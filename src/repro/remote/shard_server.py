"""One shard worker of the distributed shard service.

Launched as::

    python -m repro.remote.shard_server <artifact_dir> --shard i/N \\
        --database db.pkl [--port 0] [--host 127.0.0.1] [--faults JSON]

The worker ``EmbeddingIndex.open``\\ s the saved artifact with a single-shard
claim (``shard="i/N"`` — validated against the artifact's persisted layout,
so an off-by-one shard count or an overlapping range is refused at startup,
not served wrongly), memory-maps the distance store when the artifact
allows it, and then serves two operations for its shard over the
:mod:`repro.remote.protocol` framing:

* **filter** — the shard's stable top-``min(p, shard_size)`` filter cut for
  a batch of embedded query vectors, through the exact same
  :meth:`~repro.retrieval.engine.ShardedFilterStage.shard_cut` the
  in-process backend uses (quantized tier included), so the scatter/gather
  merge in the parent is bit-identical to the local merge.
* **refine** — exact distances from query objects to the shard's surviving
  candidates, streamed back as (global database index, distance) entries.
  Refine goes through the worker's own warm
  :class:`~repro.distances.context.DistanceContext` store (opened from the
  artifact with zero exact evaluations), with wire-decoded query objects
  re-adopted onto their store keys by content digest — so a pair is
  evaluated at most once per worker lifetime and the reported ``spent``
  matches the serial local path.

The worker is single-connection (the parent holds one persistent socket
per shard) but survives disconnects: when a client goes away it returns to
``accept`` and serves the next connection with its store still warm.
Deterministic socket-level faults (frame corruption, mid-reply connection
kill, slow peer) are injected via ``--faults`` carrying a
:class:`repro.testing.faults.FaultPlan` frame-fault payload.
"""

from __future__ import annotations

import argparse
import json
import socket
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.exceptions import (
    RemoteConnectionError,
    RemoteError,
    RemoteProtocolError,
    RemoteTimeout,
    ReproError,
    RetrievalError,
)
from repro.index import artifacts
from repro.index.embedding_index import EmbeddingIndex
from repro.remote import protocol
from repro.remote.protocol import FrameType
from repro.retrieval.sharded import ShardedRetriever
from repro.testing.faults import FaultPlan

__all__ = ["ShardServer", "main"]

#: How long the accept loop blocks before re-checking the stop flag.
_ACCEPT_POLL_SECONDS = 1.0


class _Shutdown(Exception):
    """Internal control flow: a SHUTDOWN frame was acknowledged."""


class _DropConnection(Exception):
    """Internal control flow: an injected fault killed the connection."""


class ShardServer:
    """Serve filter cuts and refine entries for one shard of an open index.

    Parameters
    ----------
    index:
        An :class:`~repro.index.embedding_index.EmbeddingIndex` restored
        with ``open(..., shard="i/N")`` — the validated shard spec decides
        which shard this server answers for.
    host, port:
        Bind address; ``port=0`` lets the OS choose (the chosen port is
        announced on stdout as ``READY host=... port=...``).
    frame_timeout:
        Per-socket timeout in seconds for every recv/send on an accepted
        connection; a stalled peer can never hang the worker.
    faults:
        Optional :class:`~repro.testing.faults.FaultPlan` whose frame-fault
        fields (``corrupt_frame`` / ``kill_connection_after`` /
        ``slow_frame``) are applied to outbound frames, for the chaos
        suite.
    """

    def __init__(
        self,
        index: EmbeddingIndex,
        host: str = "127.0.0.1",
        port: int = 0,
        frame_timeout: float = 30.0,
        faults: Optional[FaultPlan] = None,
    ) -> None:
        spec = index.shard_spec
        if spec is None:
            raise RetrievalError(
                "a ShardServer needs an index opened with a shard spec "
                "(EmbeddingIndex.open(..., shard='i/N'))"
            )
        self.index = index
        self.shard_index, self.n_shards, self.start, self.stop = spec
        # The exact construction path of the local "sharded" backend: same
        # shard layout, same filter stage, same context binding — so every
        # value this worker computes is bit-identical to the in-process
        # pipeline by construction, not by reimplementation.
        self.retriever = ShardedRetriever(
            index.context,
            index.database,
            index.embedder,
            n_shards=index.config.n_shards,
            database_vectors=index.database_vectors,
            n_jobs=None,
            quantized=index.quantized,
        )
        self.host = host
        self.port = int(port)
        self.frame_timeout = float(frame_timeout)
        self.faults = faults
        self.served_filter = 0
        self.served_refine = 0
        self.frames_sent = 0
        self.connections = 0
        self._stop = False

    # -- outbound frames -------------------------------------------------

    def _send(
        self, conn: socket.socket, frame_type: FrameType, payload: Dict[str, Any]
    ) -> None:
        """Send one frame, applying any scheduled fault to it first."""
        self.frames_sent += 1
        actions = (
            self.faults.frame_faults(self.frames_sent)
            if self.faults is not None
            else set()
        )
        if "slow" in actions:
            time.sleep(self.faults.slow_frame_seconds)
        if "kill" in actions:
            # Leave the peer holding a short read: half a header, then FIN.
            frame = protocol.encode_frame(frame_type, payload)
            try:
                conn.sendall(frame[: protocol.HEADER_SIZE // 2])
            except OSError as exc:
                raise RemoteConnectionError(
                    f"connection lost while injecting a kill fault: {exc}"
                ) from exc
            raise _DropConnection
        frame = protocol.encode_frame(frame_type, payload)
        if "corrupt" in actions:
            # Flip the payload's last byte; the header CRC now convicts it.
            frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
        try:
            conn.sendall(frame)
        except TimeoutError as exc:
            raise RemoteTimeout(
                f"timed out sending a {frame_type.name} frame"
            ) from exc
        except OSError as exc:
            raise RemoteConnectionError(
                f"connection failed sending a {frame_type.name} frame: {exc}"
            ) from exc

    # -- request handlers ------------------------------------------------

    def _handle_hello(self, conn: socket.socket, payload: Dict[str, Any]) -> None:
        claimed = payload.get("shard")
        ours = f"{self.shard_index}/{self.n_shards}"
        if claimed is not None and claimed != ours:
            raise RemoteProtocolError(
                f"client expects shard {claimed}, this worker serves {ours}"
            )
        self._send(
            conn,
            FrameType.HELLO_OK,
            {
                "shard_index": self.shard_index,
                "n_shards": self.n_shards,
                "start": self.start,
                "stop": self.stop,
                "n_database": len(self.index.database),
            },
        )

    def _handle_filter(self, conn: socket.socket, payload: Dict[str, Any]) -> None:
        vectors = payload["vectors"]
        p = int(payload["p"])
        if not isinstance(vectors, np.ndarray) or vectors.ndim != 2:
            raise RemoteProtocolError(
                "FILTER frame needs a 2-D float vector batch"
            )
        locals_: List[np.ndarray] = []
        distances: List[np.ndarray] = []
        widened: List[int] = []
        stage = self.retriever.engine.filter
        for vector in np.asarray(vectors, dtype=float):
            local, dist, wide = stage.shard_cut(self.shard_index, vector, p)
            locals_.append(np.asarray(local, dtype=np.int64))
            distances.append(np.asarray(dist, dtype=float))
            widened.append(int(wide))
        self.served_filter += len(locals_)
        self._send(
            conn,
            FrameType.FILTER_RESULT,
            {
                "locals": locals_,
                "distances": distances,
                "widened": np.asarray(widened, dtype=np.int64),
            },
        )

    def _handle_refine(self, conn: socket.socket, payload: Dict[str, Any]) -> None:
        queries = payload["queries"]
        index_lists = payload["indices"]
        if len(queries) != len(index_lists):
            raise RemoteProtocolError(
                "REFINE frame needs one candidate list per query"
            )
        if payload.get("register"):
            # Content matching re-adopts equal query objects onto the warm
            # store's keys, exactly like a reopened local index would.
            self.index.context.register(list(queries), match_content=True)
        binding = self.retriever.engine.refine.binding
        total_spent = 0
        entries = 0
        for qi, (obj, indices) in enumerate(zip(queries, index_lists)):
            indices = np.asarray(indices, dtype=np.int64)
            if indices.size == 0:
                continue
            if indices.min() < self.start or indices.max() >= self.stop:
                raise RemoteProtocolError(
                    f"REFINE candidates fall outside shard "
                    f"{self.shard_index}/{self.n_shards} "
                    f"[{self.start}, {self.stop})"
                )
            values, spent = binding.distances_to(obj, indices)
            total_spent += int(spent)
            entries += 1
            self.served_refine += 1
            self._send(
                conn,
                FrameType.REFINE_ENTRIES,
                {
                    "query": qi,
                    "indices": indices,
                    "values": np.asarray(values, dtype=float),
                    "spent": int(spent),
                },
            )
        self._send(
            conn,
            FrameType.REFINE_DONE,
            {"n_entries": entries, "spent": total_spent},
        )

    def _handle_health(self, conn: socket.socket, payload: Dict[str, Any]) -> None:
        self._send(
            conn,
            FrameType.HEALTH_RESULT,
            {
                "shard_index": self.shard_index,
                "served_filter": self.served_filter,
                "served_refine": self.served_refine,
                "connections": self.connections,
                "store_pairs": len(self.index.context.store),
                "distance_evaluations": int(self.index.distance_evaluations),
            },
        )

    def _handle_frame(
        self, conn: socket.socket, frame_type: FrameType, payload: Dict[str, Any]
    ) -> None:
        if frame_type == FrameType.HELLO:
            self._handle_hello(conn, payload)
        elif frame_type == FrameType.FILTER:
            self._handle_filter(conn, payload)
        elif frame_type == FrameType.REFINE:
            self._handle_refine(conn, payload)
        elif frame_type == FrameType.HEALTH:
            self._handle_health(conn, payload)
        elif frame_type == FrameType.SHUTDOWN:
            self._send(conn, FrameType.SHUTDOWN_OK, {"shard_index": self.shard_index})
            raise _Shutdown
        else:
            raise RemoteProtocolError(
                f"unexpected {frame_type.name} frame on a shard server"
            )

    # -- connection / accept loops ---------------------------------------

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(self.frame_timeout)
        self.connections += 1
        while True:
            try:
                frame_type, payload, _ = protocol.recv_frame(conn)
            except (RemoteConnectionError, RemoteTimeout):
                # The client went away (or stalled past the deadline);
                # drop the connection and wait for a reconnect.
                return
            except RemoteProtocolError as exc:
                # Garbage on the wire: tell the peer (best effort), then
                # drop — resynchronising a corrupt byte stream is not
                # possible with length-prefixed frames.
                try:
                    self._send(
                        conn,
                        FrameType.ERROR,
                        {"error": type(exc).__name__, "message": str(exc)},
                    )
                except RemoteError:
                    # repro-lint: disable=RP003 -- best-effort goodbye on an already-broken connection
                    pass
                return
            try:
                self._handle_frame(conn, frame_type, payload)
            except (_Shutdown, _DropConnection):
                raise
            except (RemoteConnectionError, RemoteTimeout):
                return
            except ReproError as exc:
                # A typed library error (bad request, shard mismatch, ...)
                # is an answer, not a crash: report it and keep serving.
                self._send(
                    conn,
                    FrameType.ERROR,
                    {"error": type(exc).__name__, "message": str(exc)},
                )

    def serve_forever(self) -> None:
        """Accept and serve connections until SHUTDOWN (or interrupt)."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.settimeout(_ACCEPT_POLL_SECONDS)
        try:
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((self.host, self.port))
            listener.listen(2)
            self.port = int(listener.getsockname()[1])
            # Machine-read readiness handshake: the cluster harness parses
            # this line to learn the OS-chosen port.
            print(  # repro-lint: disable=RP009 -- machine-read readiness line for the cluster harness
                f"READY host={self.host} port={self.port} "
                f"shard={self.shard_index}/{self.n_shards}",
                flush=True,
            )
            while not self._stop:
                try:
                    conn, _addr = listener.accept()
                except TimeoutError:  # repro-lint: disable=RP011 -- accept poll: the stop-flag check cadence
                    continue
                except OSError as exc:
                    raise RemoteConnectionError(
                        f"shard server accept failed: {exc}"
                    ) from exc
                try:
                    self._serve_connection(conn)
                except _Shutdown:
                    self._stop = True
                except _DropConnection:
                    pass
                finally:
                    try:
                        conn.close()
                    except OSError:  # repro-lint: disable=RP011 -- double-close guard on a dead socket
                        pass
        finally:
            listener.close()


def _load_database(path: Path) -> Any:
    """Unpickle the database the cluster harness wrote next to the artifact."""
    return artifacts.read_pickle(path, "shard server database")


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point (see the module docstring for the invocation)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.remote.shard_server",
        description="Serve one shard of a saved EmbeddingIndex artifact.",
    )
    parser.add_argument("artifact", help="artifact directory written by save()")
    parser.add_argument(
        "--shard", required=True, help="shard claim, e.g. 1/4 or 1/4:25-50"
    )
    parser.add_argument(
        "--database",
        required=True,
        help="pickle of the Dataset the artifact was built over",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-connection socket timeout in seconds",
    )
    parser.add_argument(
        "--no-mmap",
        action="store_true",
        help="load the distance store eagerly instead of memory-mapping it",
    )
    parser.add_argument(
        "--faults",
        default=None,
        help="JSON FaultPlan frame-fault payload (chaos testing)",
    )
    args = parser.parse_args(argv)

    faults = None
    if args.faults:
        try:
            faults = FaultPlan(**json.loads(args.faults))
        except (TypeError, ValueError) as exc:
            parser.error(f"bad --faults payload: {exc}")
    database = _load_database(Path(args.database))
    index = EmbeddingIndex.open(
        Path(args.artifact),
        database,
        shard=args.shard,
        store_mmap_mode=None if args.no_mmap else "r",
    )
    server = ShardServer(
        index,
        host=args.host,
        port=args.port,
        frame_timeout=args.timeout,
        faults=faults,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        index.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
