"""Nearest-neighbor retrieval: ground truth, filter-and-refine, evaluation.

This subpackage implements Sec. 8 and the evaluation protocol of Sec. 9:

* exact brute-force retrieval (the baseline every speed-up is measured
  against) and ground-truth computation (:mod:`repro.retrieval.brute_force`,
  :mod:`repro.retrieval.knn`);
* the filter-and-refine pipeline driven by an embedding and its (possibly
  query-sensitive) vector distance (:mod:`repro.retrieval.filter_refine`),
  plus its sharded, process-parallel serving shape with bit-identical
  results and cost accounting (:mod:`repro.retrieval.sharded`);
* the accuracy-versus-cost evaluation with the paper's optimal-parameter
  search over the embedding dimensionality ``d`` and the filter size ``p``
  (:mod:`repro.retrieval.evaluation`, :mod:`repro.retrieval.sweep`);
* the cost-based adaptive query planner that chooses ``p``, the filter
  tier, the execution backend and the refine fan-out per query from a
  fitted cost model (:mod:`repro.retrieval.planner`);
* dynamic-database maintenance and drift detection
  (:mod:`repro.retrieval.dynamic`, Sec. 7.1).
"""

from repro.retrieval.knn import NeighborTable, knn_from_distances, ground_truth_neighbors
from repro.retrieval.engine import (
    EmbedStage,
    FilterStage,
    MergeStage,
    QueryEngine,
    QueryPlan,
    RefineStage,
    ScanStage,
    ShardedFilterStage,
)
from repro.retrieval.brute_force import BruteForceRetriever
from repro.retrieval.filter_refine import FilterRefineRetriever, RetrievalResult
from repro.retrieval.quantized import QuantizedVectors, quantized_filter_cut
from repro.retrieval.sharded import Shard, ShardedRetriever
from repro.retrieval.evaluation import (
    FilterRankResult,
    filter_ranks,
    required_filter_sizes,
    cost_for_accuracy,
    retrieval_recall,
    success_rate,
    AccuracyCostPoint,
)
from repro.retrieval.sweep import (
    DimensionSweep,
    SweepEntry,
    optimal_cost_curve,
    run_sweep,
)
from repro.retrieval.planner import (
    CostModel,
    PlannedRetriever,
    choose_operating_point,
    refine_schedule,
)
from repro.retrieval.dynamic import DynamicDatabase, DriftMonitor

__all__ = [
    "NeighborTable",
    "knn_from_distances",
    "ground_truth_neighbors",
    "QueryEngine",
    "QueryPlan",
    "EmbedStage",
    "FilterStage",
    "ShardedFilterStage",
    "ScanStage",
    "RefineStage",
    "MergeStage",
    "BruteForceRetriever",
    "FilterRefineRetriever",
    "QuantizedVectors",
    "quantized_filter_cut",
    "RetrievalResult",
    "Shard",
    "ShardedRetriever",
    "FilterRankResult",
    "filter_ranks",
    "required_filter_sizes",
    "cost_for_accuracy",
    "retrieval_recall",
    "success_rate",
    "AccuracyCostPoint",
    "DimensionSweep",
    "SweepEntry",
    "optimal_cost_curve",
    "run_sweep",
    "CostModel",
    "PlannedRetriever",
    "choose_operating_point",
    "refine_schedule",
    "DynamicDatabase",
    "DriftMonitor",
]
