"""Exact brute-force nearest-neighbor retrieval.

This is the reference point of the whole paper: answering a query exactly
costs one distance computation per database object.  The retriever counts its
evaluations so tests and benchmarks can verify the accounting.

The scan is the degenerate configuration of the shared
:class:`~repro.retrieval.engine.QueryEngine` — a
:class:`~repro.retrieval.engine.ScanStage` "filter" that keeps every
database position, followed by the same
:class:`~repro.retrieval.engine.RefineStage` the embedding retrievers
refine with — so vectorised distance kernels, ``n_jobs`` fan-out and the
exact accounting rules are the same code everywhere.  Ties in the exact
distance are resolved by the smallest database index (stable sort), the
reference tie order every filter-and-refine pipeline in
:mod:`repro.retrieval` reproduces.

When built on a :class:`~repro.distances.context.DistanceContext` whose
universe contains the database, the scan charges against the shared store:
(query, object) pairs already evaluated — e.g. by a persisted ground-truth
table — are free, and freshly scanned pairs are recorded for the rest of
the pipeline.  :attr:`BruteForceRetriever.distance_computations` then
counts the evaluations actually performed; the returned neighbors are
bit-identical either way.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.distances.base import CountingDistance, DistanceMeasure
from repro.exceptions import RetrievalError
from repro.retrieval.engine import QueryEngine

__all__ = ["BruteForceRetriever"]


class BruteForceRetriever:
    """Exact k-NN retrieval by scanning the whole database.

    Parameters
    ----------
    distance:
        The exact distance measure ``D_X``, or a
        :class:`~repro.distances.context.DistanceContext` to scan through
        the shared store.
    database:
        The database to search.
    """

    def __init__(self, distance: DistanceMeasure, database: Dataset) -> None:
        if not isinstance(distance, DistanceMeasure):
            raise RetrievalError("distance must be a DistanceMeasure instance")
        if not isinstance(database, Dataset):
            raise RetrievalError("database must be a Dataset")
        self.database = database
        self.engine = QueryEngine.brute_force(distance, database)
        self._all_positions = self.engine.filter.all_positions

    @property
    def _binding(self):
        return self.engine.refine.binding

    @property
    def _counting(self) -> Optional[CountingDistance]:
        return self.engine.refine.counting

    @property
    def distance_computations(self) -> int:
        """Total exact distance evaluations performed so far.

        For a context-backed retriever this counts the evaluations actually
        performed by this retriever's scans (store hits are free).
        """
        return self.engine.refine.calls

    def reset_counter(self) -> None:
        """Reset the distance-evaluation counter."""
        self.engine.refine.reset()

    def _check_k(self, k: int) -> None:
        if not 1 <= k <= len(self.database):
            raise RetrievalError(
                f"k must be in [1, {len(self.database)}], got {k}"
            )

    def scan_many(
        self, objects, n_jobs: Optional[int] = None
    ) -> Tuple[List[np.ndarray], List[int]]:
        """Full-database exact distance scans for many queries.

        Returns ``(distances_list, spent_list)`` aligned with the input:
        ``distances_list[i]`` holds query ``i``'s exact distances to every
        database object (in database order) and ``spent_list[i]`` the
        evaluations actually performed for it — ``len(database)`` for a
        plain measure, possibly fewer through a context-backed store.  This
        is the primitive both :meth:`query_many` and the
        :class:`~repro.index.embedding_index.EmbeddingIndex` brute-force
        backend rank from, so their per-query cost accounting can never
        diverge.
        """
        objects = list(objects)
        if not objects:
            return [], []
        plan = self.engine.make_plan(objects, k=1, p=None, n_jobs=n_jobs)
        plan = self.engine.run(plan)
        n = len(self.database)
        return (
            plan.exact_lists,
            [n if spent is None else int(spent) for spent in plan.refine_costs],
        )

    def query(self, obj: Any, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the indices and distances of the ``k`` nearest neighbors.

        The cost is exactly ``len(database)`` distance computations,
        evaluated through one batched ``compute_many`` call.
        """
        self._check_k(k)
        if self._binding is not None:
            distances, _ = self._binding.distances_to(obj, self._all_positions)
        else:
            distances = np.asarray(
                self._counting.compute_many(obj, list(self.database)), dtype=float
            )
        order = np.argsort(distances, kind="stable")[:k]
        return order, distances[order]

    def query_many(
        self, objects, k: int, n_jobs: Optional[int] = None
    ) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Run :meth:`query` for every object in an iterable.

        With ``n_jobs > 1`` (``-1`` = all CPUs) the per-query scans are
        spread over a process pool; results and the evaluation counter are
        identical to the serial path.
        """
        self._check_k(k)
        distances_list, _spent = self.scan_many(objects, n_jobs=n_jobs)
        results = []
        for distances in distances_list:
            order = np.argsort(distances, kind="stable")[:k]
            results.append((order, distances[order]))
        return results
