"""Exact brute-force nearest-neighbor retrieval.

This is the reference point of the whole paper: answering a query exactly
costs one distance computation per database object.  The retriever counts its
evaluations so tests and benchmarks can verify the accounting.
"""

from __future__ import annotations

from typing import Any, List, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.distances.base import CountingDistance, DistanceMeasure
from repro.exceptions import RetrievalError


class BruteForceRetriever:
    """Exact k-NN retrieval by scanning the whole database.

    Parameters
    ----------
    distance:
        The exact distance measure ``D_X``.
    database:
        The database to search.
    """

    def __init__(self, distance: DistanceMeasure, database: Dataset) -> None:
        if not isinstance(distance, DistanceMeasure):
            raise RetrievalError("distance must be a DistanceMeasure instance")
        if not isinstance(database, Dataset):
            raise RetrievalError("database must be a Dataset")
        self._counting = CountingDistance(distance)
        self.database = database

    @property
    def distance_computations(self) -> int:
        """Total exact distance evaluations performed so far."""
        return self._counting.calls

    def reset_counter(self) -> None:
        """Reset the distance-evaluation counter."""
        self._counting.reset()

    def query(self, obj: Any, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Return the indices and distances of the ``k`` nearest neighbors.

        The cost is exactly ``len(database)`` distance computations.
        """
        if not 1 <= k <= len(self.database):
            raise RetrievalError(
                f"k must be in [1, {len(self.database)}], got {k}"
            )
        distances = np.array(
            [self._counting(obj, candidate) for candidate in self.database]
        )
        order = np.argsort(distances, kind="stable")[:k]
        return order, distances[order]

    def query_many(self, objects, k: int) -> List[Tuple[np.ndarray, np.ndarray]]:
        """Run :meth:`query` for every object in an iterable."""
        return [self.query(obj, k) for obj in objects]
