"""Shared glue between the retrievers and a :class:`DistanceContext`.

All three retrieval pipelines (brute force, filter-and-refine, sharded)
support being built on a :class:`~repro.distances.context.DistanceContext`
instead of a raw measure: exact evaluations then charge against the
context's shared store, so cached pairs are free.  The mapping from the
retriever's database positions to the context's universe indices, and the
"actual evaluations performed" accounting, are identical across the three —
:class:`ContextBinding` holds them once so the retrievers cannot drift.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.distances.base import DistanceMeasure
from repro.distances.context import DistanceContext
from repro.exceptions import DistanceError, RetrievalError

__all__ = ["ContextBinding", "bind_context"]


class ContextBinding:
    """A :class:`DistanceContext` bound to one retriever's database.

    Attributes
    ----------
    context:
        The shared distance context.
    indices:
        ``indices[position]`` is the universe index of the database object
        at ``position``, so retriever-level candidate arrays translate to
        store keys with one fancy index.
    calls:
        Exact evaluations actually performed through this binding (store
        hits are free) — the number the retrievers report.
    """

    def __init__(self, context: DistanceContext, database: Dataset) -> None:
        try:
            self.indices = context.indices_of(list(database))
        except DistanceError as exc:
            raise RetrievalError(
                "the DistanceContext universe must contain every database "
                "object (build the context over the database, or database "
                "plus queries)"
            ) from exc
        self.context = context
        self.calls = 0

    def distances_to(
        self, obj: Any, positions: np.ndarray
    ) -> Tuple[np.ndarray, int]:
        """Exact distances from ``obj`` to the database ``positions``.

        Returns ``(values, spent)`` where ``spent`` is the number of fresh
        evaluations the call performed (0 when every pair was cached).
        """
        before = self.context.distance_evaluations
        values = np.asarray(
            self.context.distances_to(obj, self.indices[positions]), dtype=float
        )
        spent = self.context.distance_evaluations - before
        self.calls += spent
        return values, spent

    def distances_to_many(
        self,
        objects: Sequence[Any],
        position_lists: Sequence[np.ndarray],
        n_jobs: Optional[int] = None,
    ) -> Tuple[List[np.ndarray], List[int]]:
        """Batched :meth:`distances_to`; the context pools missing pairs."""
        values, computed = self.context.distances_to_many(
            objects, [self.indices[p] for p in position_lists], n_jobs=n_jobs
        )
        self.calls += sum(computed)
        return values, computed


def bind_context(
    distance: DistanceMeasure, database: Dataset
) -> Optional[ContextBinding]:
    """Bind ``distance`` to ``database`` if it is a context, else ``None``."""
    if isinstance(distance, DistanceContext):
        return ContextBinding(distance, database)
    return None
