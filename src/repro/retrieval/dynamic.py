"""Dynamic datasets: online insertions, deletions and drift detection.

Sec. 7.1 of the paper: as long as the distribution of database objects does
not change, adding an object only requires computing its embedding (at most
``2d`` exact distances) and removing one requires no distance computations at
all.  If the distribution drifts, the quality of the embedding should be
monitored by re-measuring its triple classification error on fresh triples
drawn from the current database; when the error exceeds a threshold, the
embedding should be retrained.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.core.training_data import make_sampler
from repro.datasets.base import Dataset
from repro.distances.base import CountingDistance, DistanceMeasure
from repro.distances.matrix import pairwise_distances
from repro.exceptions import RetrievalError
from repro.retrieval.engine import MergeStage, QueryPlan, RefineStage, stable_smallest
from repro.utils.rng import RngLike, ensure_rng


class DynamicDatabase:
    """A database that supports online insertion and removal of objects.

    Parameters
    ----------
    distance:
        The exact distance measure (needed to embed new objects and to refine
        query results).
    model:
        The trained embedding model used for filtering.
    initial_objects:
        Objects present at construction time.
    """

    def __init__(
        self,
        distance: DistanceMeasure,
        model: QuerySensitiveModel,
        initial_objects: Optional[Sequence[Any]] = None,
    ) -> None:
        if not isinstance(distance, DistanceMeasure):
            raise RetrievalError("distance must be a DistanceMeasure instance")
        if not isinstance(model, QuerySensitiveModel):
            raise RetrievalError("model must be a QuerySensitiveModel")
        self.model = model
        self.objects: List[Any] = []
        # The refine/merge stages are shared with every other retrieval
        # pipeline, so tie-breaking and accounting cannot drift from them.
        # ``bind=False``: the database mutates, so a frozen context binding
        # would be invalid — exact distances always go through the stage's
        # counting wrapper.
        self._refine = RefineStage(distance, self.objects, bind=False)
        self._merge = MergeStage()
        self._counting = self._refine.counting
        self._vectors: List[np.ndarray] = []
        self.insertion_distance_computations = 0
        for obj in initial_objects or []:
            self.add(obj)

    def __len__(self) -> int:
        return len(self.objects)

    @property
    def vectors(self) -> np.ndarray:
        """The ``(n, d)`` matrix of embeddings of the current objects."""
        if not self._vectors:
            return np.zeros((0, self.model.dim), dtype=float)
        return np.vstack(self._vectors)

    def add(self, obj: Any) -> int:
        """Insert an object; returns its index.

        Cost: ``model.cost`` exact distance computations (at most ``2d``),
        tracked in :attr:`insertion_distance_computations`.
        """
        vector = self.model.embed(obj)
        self.objects.append(obj)
        self._vectors.append(np.asarray(vector, dtype=float))
        self.insertion_distance_computations += self.model.cost
        return len(self.objects) - 1

    def remove(self, index: int) -> Any:
        """Remove and return the object at ``index`` (no distance cost)."""
        if not 0 <= index < len(self.objects):
            raise RetrievalError(f"index {index} out of range")
        self._vectors.pop(index)
        return self.objects.pop(index)

    def query(self, obj: Any, k: int, p: int) -> Tuple[np.ndarray, np.ndarray, int]:
        """Filter-and-refine k-NN query against the current contents.

        Returns ``(indices, exact_distances, distance_computations)``.

        The refine step runs through the shared
        :class:`~repro.retrieval.engine.RefineStage` /
        :class:`~repro.retrieval.engine.MergeStage`, so exact-distance ties
        are resolved by the smallest database index — identical to a
        brute-force scan and to every other retriever.  (An earlier
        implementation re-sorted by *filter order* among tied exact
        distances, which could disagree with brute force when the embedding
        ranked tied objects differently.)
        """
        n = len(self.objects)
        if n == 0:
            raise RetrievalError("the dynamic database is empty")
        if not 1 <= k <= n:
            raise RetrievalError(f"k must be in [1, {n}], got {k}")
        if not k <= p <= n:
            raise RetrievalError(f"p must be in [{k}, {n}], got {p}")
        query_vector = self.model.embed(obj)
        filter_dists = self.model.distances_to(query_vector, self.vectors)
        candidates = stable_smallest(filter_dists, p)
        plan = QueryPlan(objects=[obj], k=k, p=p, single=True)
        plan.k_eff, plan.p_eff = int(k), int(p)
        plan.embedding_cost = self.model.cost
        plan.candidate_lists = [candidates]
        plan = self._merge.run(self._refine.run(plan))
        result = plan.results[0]
        return (
            result.neighbor_indices,
            result.neighbor_distances,
            result.total_distance_computations,
        )


@dataclass
class DriftMonitor:
    """Detect distribution drift by re-measuring the triple error (Sec. 7.1).

    Parameters
    ----------
    distance:
        The exact distance measure.
    model:
        The embedding model being monitored.
    baseline_error:
        The triple error measured right after training (or on the original
        distribution).
    tolerance:
        Allowed absolute increase of the triple error before
        :meth:`has_drifted` reports drift.
    """

    distance: DistanceMeasure
    model: QuerySensitiveModel
    baseline_error: float
    tolerance: float = 0.05

    def measure_error(
        self,
        objects: Sequence[Any],
        n_triples: int = 500,
        sampler: str = "selective",
        k1: int = 3,
        seed: RngLike = 0,
    ) -> float:
        """Triple classification error of the model on fresh objects.

        Triples are drawn from ``objects`` with the same samplers used during
        training; the exact pairwise distances over the (small) sample are the
        only expensive computations involved.
        """
        objects = list(objects)
        if len(objects) < 3:
            raise RetrievalError("need at least three objects to form triples")
        matrix = pairwise_distances(self.distance, objects)
        triple_sampler = make_sampler(sampler, k1=k1, seed=seed)
        triples = triple_sampler.sample(matrix, n_triples)
        vectors = self.model.embed_many(objects)
        return self.model.triple_error(
            vectors[triples.q], vectors[triples.a], vectors[triples.b], triples.labels
        )

    def has_drifted(
        self,
        objects: Sequence[Any],
        n_triples: int = 500,
        seed: RngLike = 0,
    ) -> bool:
        """Whether the measured error exceeds ``baseline_error + tolerance``."""
        error = self.measure_error(objects, n_triples=n_triples, seed=seed)
        return error > self.baseline_error + self.tolerance
