"""QueryEngine: the staged embed → filter → refine → merge retrieval pipeline.

The paper's retrieval model is one fixed pipeline — embed the query (exact
distances to the embedding's reference objects), filter the database by a
cheap vector distance, refine the best ``p`` candidates with exact
distances — yet the repo used to implement that pipeline three times over
(brute force, filter-and-refine, sharded).  This module decomposes it into
explicit, composable *stages*, each a small object with a ``run(plan) ->
plan`` step over a shared :class:`QueryPlan`:

* :class:`EmbedStage` — clamp ``(k, p)`` and embed the queries (batched
  ``embed_many``; a single query keeps the scalar ``embed`` call so store
  interactions are unchanged);
* :class:`FilterStage` — rank database vectors by the cheap filter distance
  and keep the stable top-``p`` cut (no exact distances);
* :class:`ShardedFilterStage` — the same cut evaluated per contiguous shard
  and merged into the identical global candidate list, plus the per-shard
  candidate split the refine stage routes work with;
* :class:`ScanStage` — the degenerate "filter" of brute force: every
  database position is a candidate;
* :class:`RefineStage` — evaluate the exact distances from each query to
  its candidates, through a shared
  :class:`~repro.distances.context.DistanceContext` store when one is
  bound (cached pairs are free) and over worker processes when ``n_jobs``
  asks for them, with the library's exact cost-accounting rules;
* :class:`MergeStage` — order the refined candidates (ties by database
  index, the brute-force-identical order) into
  :class:`RetrievalResult` objects.

:class:`QueryEngine` chains the stages; the public retrievers
(:class:`~repro.retrieval.brute_force.BruteForceRetriever`,
:class:`~repro.retrieval.filter_refine.FilterRefineRetriever`,
:class:`~repro.retrieval.sharded.ShardedRetriever`) are thin
configurations of it, so the tie-breaking, clamping, accounting and
parallel fan-out rules exist exactly once.  The async serving layer
(:mod:`repro.index.serving`) reuses the embed/filter stages to prepare
queries in the parent while refine batches run on the persistent pool.

Store-aware sharded refine
--------------------------
When the sharded pipeline runs on a ``DistanceContext``, the refine stage
routes work *per (query, shard) group*: store hits are resolved in the
parent, and only each shard's missing pairs become refine work, so a shard
whose pairs are already cached receives **zero** exact evaluations — the
ROADMAP's "store-aware shard placement" in its single-process form.  The
per-shard evaluation counts are accumulated in
:attr:`RefineStage.shard_evaluations` (surfaced as
``ShardedRetriever.shard_refine_evaluations``), which is exactly the
hit-rate signal a remote-shard placement policy needs.  Results and
per-query costs stay bit-identical to the ungrouped path because a query's
candidates are unique and shard ranges are disjoint.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.datasets.base import Dataset
from repro.distances.base import CountingDistance, DistanceMeasure
from repro.distances.parallel import (
    ensure_parallel_safe,
    parallel_refine,
    resolve_jobs,
    split_counting,
)
from repro.embeddings.base import Embedding
from repro.exceptions import RetrievalError
from repro.retrieval.context_binding import ContextBinding, bind_context
from repro.retrieval.quantized import QuantizedVectors, quantized_filter_cut

__all__ = [
    "RetrievalResult",
    "QueryPlan",
    "QueryEngine",
    "EmbedStage",
    "FilterStage",
    "ShardedFilterStage",
    "ScanStage",
    "RefineStage",
    "MergeStage",
    "stable_smallest",
    "clamp_query_params",
    "filter_vector_distances",
    "merge_shard_cuts",
    "refine_order",
    "build_retrieval_result",
    "build_scan_result",
    "collect_plan_stats",
]


# --------------------------------------------------------------------------- #
# Shared primitives (formerly private helpers of filter_refine)               #
# --------------------------------------------------------------------------- #


def stable_smallest(values: np.ndarray, p: Optional[int]) -> np.ndarray:
    """Indices of the ``p`` smallest values, in stable ascending order.

    Exactly equivalent to ``np.argsort(values, kind="stable")[:p]`` but uses
    :func:`np.argpartition` for the top-``p`` cut, so only the survivors pay
    the sort.  Boundary ties are resolved by smallest index, matching the
    stable full sort.
    """
    values = np.asarray(values)
    n = values.shape[0]
    if p is None or p >= n:
        return np.argsort(values, kind="stable")
    if p <= 0:
        return np.zeros(0, dtype=int)
    partition = np.argpartition(values, p - 1)[:p]
    # argpartition breaks ties at the cut arbitrarily; rebuild the selection
    # so that equal values at the boundary keep the lowest database indices.
    boundary = values[partition].max()
    below = np.flatnonzero(values < boundary)
    needed = p - below.size
    chosen = np.concatenate([below, np.flatnonzero(values == boundary)[:needed]])
    order = np.argsort(values[chosen], kind="stable")
    return chosen[order]


def clamp_query_params(k: int, p: int, n: int) -> Tuple[int, int]:
    """Clamp ``(k, p)`` against a database of ``n`` objects.

    ``k`` and ``p`` must be positive; beyond that they are clamped rather
    than rejected: ``k`` is capped at ``n`` (a query cannot have more
    neighbors than the database holds) and ``p`` is raised to at least the
    effective ``k`` (so the refine step can return ``k`` results) and capped
    at ``n`` (refining more candidates than exist is meaningless).  Returns
    the effective ``(k, p)``; the refine cost charged per query is the
    effective ``p``.
    """
    if k < 1:
        raise RetrievalError(f"k must be a positive integer, got {k}")
    if p < 1:
        raise RetrievalError(f"p must be a positive integer, got {p}")
    k_eff = min(int(k), n)
    p_eff = min(max(int(p), k_eff), n)
    return k_eff, p_eff


def filter_vector_distances(
    embedder: Union[QuerySensitiveModel, Embedding],
    query_vector: np.ndarray,
    database_vectors: np.ndarray,
) -> np.ndarray:
    """Filter-step distances from one embedded query to database vectors.

    Row-wise over ``database_vectors``, so evaluating it per shard and
    concatenating yields bit-identical values to one full-database call.
    """
    query_vector = np.asarray(query_vector, dtype=float)
    if isinstance(embedder, QuerySensitiveModel):
        return embedder.distances_to(query_vector, database_vectors)
    return np.abs(database_vectors - query_vector[None, :]).sum(axis=1)


def merge_shard_cuts(
    shard_indices: Sequence[np.ndarray],
    shard_distances: Sequence[np.ndarray],
    p: int,
) -> np.ndarray:
    """Merge per-shard filter cuts into the global top-``p`` candidate list.

    ``shard_indices[s]`` are shard ``s``'s surviving candidates as *global*
    database indices in stable (distance, index) order, ``shard_distances[s]``
    their filter distances.  Because each shard list is stable-ordered and
    shard order equals global index order, concatenation order breaks
    distance ties by ascending global index — so the merged cut is identical
    to the unsharded stable filter cut.  This is the gather half of the
    sharded merge, shared by :class:`ShardedFilterStage` (in-process) and the
    ``repro.remote`` scatter/gather client (per-shard cuts arriving over
    sockets), so the two can never order ties differently.
    """
    merged_distances = np.concatenate(list(shard_distances))
    merged_indices = np.concatenate(list(shard_indices))
    order = np.argsort(merged_distances, kind="stable")[:p]
    return merged_indices[order]


def refine_order(exact: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` best refined candidates, ties by database index.

    ``np.lexsort`` with the exact distance as the primary key and the global
    database index as the secondary key reproduces exactly the tie-stable
    order of a brute-force scan, regardless of the order the candidates
    survived the filter in.
    """
    return np.lexsort((candidates, exact))[:k]


def build_retrieval_result(
    candidates: np.ndarray,
    exact: np.ndarray,
    k_eff: int,
    p_eff: int,
    embedding_cost: int,
    refine_cost: Optional[int] = None,
    partial: bool = False,
) -> "RetrievalResult":
    """Assemble a :class:`RetrievalResult` from refined candidate distances.

    Shared by every pipeline configuration so the neighbor ordering and
    cost accounting can never diverge between paths.  ``refine_cost``
    defaults to the nominal ``p``; context-backed pipelines pass the number
    of evaluations actually performed (cached pairs are free).  ``partial``
    marks a deadline-expired serving result ranked over the candidates
    that were resolved in time (see :meth:`EmbeddingIndex.submit`).
    """
    order = refine_order(exact, candidates, k_eff)
    return RetrievalResult(
        neighbor_indices=candidates[order],
        neighbor_distances=exact[order],
        candidate_indices=candidates,
        embedding_distance_computations=int(embedding_cost),
        refine_distance_computations=int(
            p_eff if refine_cost is None else refine_cost
        ),
        partial=partial,
    )


def build_scan_result(
    exact: np.ndarray,
    candidates: np.ndarray,
    k: int,
    refine_cost: int,
    partial: bool = False,
) -> "RetrievalResult":
    """Rank one full exact scan (the brute-force result shape).

    ``k`` is clamped to the scan length; ties resolve by the smallest
    database index (stable sort) — the reference order every pipeline
    reproduces.  Shared by the ``EmbeddingIndex`` brute-force backend and
    the async serving layer so the scan ranking exists exactly once.
    """
    if k < 1:
        raise RetrievalError(f"k must be a positive integer, got {k}")
    k_eff = min(int(k), exact.shape[0])
    order = np.argsort(exact, kind="stable")[:k_eff]
    return RetrievalResult(
        neighbor_indices=order,
        neighbor_distances=exact[order],
        candidate_indices=candidates,
        embedding_distance_computations=0,
        refine_distance_computations=int(refine_cost),
        partial=partial,
    )


@dataclass
class RetrievalResult:
    """Outcome of one filter-and-refine query.

    Attributes
    ----------
    neighbor_indices:
        Database indices of the ``min(k, n)`` reported neighbors, best first.
    neighbor_distances:
        Their exact distances to the query.
    candidate_indices:
        The (effective) ``p`` database indices that survived the filter step,
        in filter order.
    embedding_distance_computations:
        Exact distances spent embedding the query (the embedder's nominal
        per-query cost).
    refine_distance_computations:
        Exact distances spent in the refine step.  Equals the effective
        ``p`` for a plain distance measure; for a pipeline backed by a
        :class:`~repro.distances.context.DistanceContext` it is the number
        of evaluations actually performed — pairs already in the shared
        store are free, so a fully warm store reports ``0``.
    partial:
        ``False`` everywhere except the serving layer's
        ``allow_partial=True`` deadline path: ``True`` means the neighbors
        were ranked over only the candidates whose exact distances were
        resolved before the deadline — correct distances, possibly missing
        neighbors — and must not be compared bit-for-bit with a full
        result.
    stats:
        Optional per-stage wall-clock and evaluation counters (the batch's
        shared ``plan.stats`` dict, attached by :meth:`QueryEngine.run`;
        the cost-based planner adds its per-query decision fields).
        ``None`` on paths that do not collect timings.  Diagnostic only —
        never part of the bit-identity contract.
    """

    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray
    candidate_indices: np.ndarray
    embedding_distance_computations: int
    refine_distance_computations: int
    partial: bool = False
    stats: Optional[Dict[str, Any]] = None

    @property
    def total_distance_computations(self) -> int:
        """The paper's cost metric: embedding cost plus refine cost."""
        return self.embedding_distance_computations + self.refine_distance_computations


# --------------------------------------------------------------------------- #
# The plan                                                                    #
# --------------------------------------------------------------------------- #

#: One (shard_id, local_indices, positions) unit of per-shard refine work:
#: ``positions`` locates each shard candidate inside the filter-ordered
#: candidate array, so refined distances can be scattered back.
ShardWork = Tuple[int, np.ndarray, np.ndarray]


@dataclass
class QueryPlan:
    """The state one query batch accumulates as it flows through the stages.

    A plan is built by :meth:`QueryEngine.make_plan`, then each stage's
    ``run(plan)`` reads the fields earlier stages filled and adds its own —
    embed fills :attr:`query_vectors`, filter fills :attr:`candidate_lists`
    (and :attr:`shard_work` when sharded), refine fills :attr:`exact_lists`
    and :attr:`refine_costs`, merge fills :attr:`results`.
    """

    objects: List[Any]
    k: int
    p: Optional[int]
    n_jobs: Optional[int] = None
    #: Single-query plans keep the scalar ``embed``/``distances_to`` calls
    #: of the original per-query paths, so store and counter interactions
    #: are unchanged.
    single: bool = False
    k_eff: int = 0
    p_eff: int = 0
    embedding_cost: int = 0
    query_vectors: Optional[np.ndarray] = None
    candidate_lists: List[np.ndarray] = field(default_factory=list)
    #: Per-query per-shard refine routing (sharded pipelines only).
    shard_work: Optional[List[List[ShardWork]]] = None
    exact_lists: List[np.ndarray] = field(default_factory=list)
    #: Evaluations actually performed per query (``None`` = nominal ``p``).
    refine_costs: List[Optional[int]] = field(default_factory=list)
    results: List[RetrievalResult] = field(default_factory=list)
    #: Per-stage wall-clock seconds and evaluation counters, filled by
    #: :meth:`QueryEngine.run` (and partially by :meth:`QueryEngine.prepare`).
    stats: Optional[Dict[str, Any]] = None


# --------------------------------------------------------------------------- #
# Stages                                                                      #
# --------------------------------------------------------------------------- #


class EmbedStage:
    """Embed the query objects (cost: ``embedder.cost`` exact distances each)."""

    #: Key this stage's wall-clock is recorded under in ``plan.stats``.
    stat_name = "embed"

    def __init__(self, embedder: Union[QuerySensitiveModel, Embedding]) -> None:
        self.embedder = embedder

    @property
    def dim(self) -> int:
        """Dimensionality of the embedding space."""
        return self.embedder.dim

    @property
    def cost(self) -> int:
        """Exact evaluations one embedding costs."""
        return self.embedder.cost

    def run(self, plan: QueryPlan) -> QueryPlan:
        """Embed the plan's query objects into ``plan.query_vectors``."""
        plan.embedding_cost = self.embedder.cost
        if plan.single:
            vector = self.embedder.embed(plan.objects[0])
            plan.query_vectors = np.asarray(vector, dtype=float)[None, :]
        else:
            plan.query_vectors = np.asarray(
                self.embedder.embed_many(plan.objects), dtype=float
            )
        return plan


class FilterStage:
    """Stable top-``p`` cut of the database by the cheap filter distance.

    With a :class:`~repro.retrieval.quantized.QuantizedVectors` table bound
    (``quantized``), the scan reads the low-precision copy and re-scores
    only an error-bounded candidate superset with the exact float64 rows —
    candidates, tie order and downstream refine counts stay bit-identical
    to the float64 scan, and the superset size is charged honestly in
    :attr:`widened_total` (see :func:`repro.retrieval.quantized.quantized_filter_cut`).
    """

    stat_name = "filter"

    def __init__(
        self,
        embedder: Union[QuerySensitiveModel, Embedding],
        database_vectors: np.ndarray,
        quantized: Optional["QuantizedVectors"] = None,
    ) -> None:
        self.embedder = embedder
        self.database_vectors = database_vectors
        if quantized is not None and len(quantized) != database_vectors.shape[0]:
            raise RetrievalError(
                f"quantized table has {len(quantized)} rows, float64 table "
                f"has {database_vectors.shape[0]}"
            )
        self.quantized = quantized
        #: Queries answered through the quantized scan so far.
        self.widened_queries = 0
        #: Total widened candidate count ``sum of p'`` across those queries
        #: — the exact float64 filter rows evaluated to absorb quantization
        #: error (``p' >= p`` per query).
        self.widened_total = 0

    def distances(self, query_vector: np.ndarray) -> np.ndarray:
        """Vector distances from an embedded query to every database vector."""
        return filter_vector_distances(
            self.embedder, query_vector, self.database_vectors
        )

    def order(self, query_vector: np.ndarray, p: Optional[int] = None) -> np.ndarray:
        """Database indices sorted by increasing filter distance (top ``p``).

        Always the exact float64 scan; the quantized path of :meth:`run`
        produces bit-identical candidates, so the two never diverge.
        """
        return stable_smallest(self.distances(query_vector), p)

    def cut(self, query_vector: np.ndarray, p: Optional[int]) -> np.ndarray:
        """One query's candidate cut, through the quantized tier when bound."""
        if self.quantized is None:
            return self.order(query_vector, p)
        candidates, _exact, widened = quantized_filter_cut(
            self.quantized, self.embedder, query_vector, self.database_vectors, p
        )
        self.widened_queries += 1
        self.widened_total += widened
        return candidates

    def run(self, plan: QueryPlan) -> QueryPlan:
        """Rank the database per query vector into ``plan.candidate_lists``."""
        plan.candidate_lists = [
            self.cut(vector, plan.p_eff) for vector in plan.query_vectors
        ]
        return plan


class ShardedFilterStage:
    """Per-shard filter cut merged into the identical global candidate list.

    Also computes the per-shard candidate split the refine stage routes
    work with (``plan.shard_work``).
    """

    stat_name = "filter"

    def __init__(
        self,
        embedder: Union[QuerySensitiveModel, Embedding],
        shards: Sequence[Any],
        quantized: Optional["QuantizedVectors"] = None,
    ) -> None:
        self.embedder = embedder
        self.shards = list(shards)
        #: Per-shard slices of the quantized table (views; shared error
        #: bounds), aligned with :attr:`shards`.  ``None`` = exact scan.
        self.shard_quantized: Optional[List["QuantizedVectors"]] = None
        if quantized is not None:
            total = sum(len(shard) for shard in self.shards)
            if len(quantized) != total:
                raise RetrievalError(
                    f"quantized table has {len(quantized)} rows, shards "
                    f"cover {total}"
                )
            self.shard_quantized = [
                quantized.slice(shard.offset, shard.offset + len(shard))
                for shard in self.shards
            ]
        #: Same accounting as :class:`FilterStage`: queries served through
        #: the quantized scan, and their total widened candidate count
        #: (summed across shards per query).
        self.widened_queries = 0
        self.widened_total = 0

    def shard_cut(
        self, shard_id: int, query_vector: np.ndarray, p: int
    ) -> Tuple[np.ndarray, np.ndarray, int]:
        """One shard's stable top-``min(p, shard_size)`` filter cut.

        Returns ``(local_indices, filter_distances, widened)`` in stable
        (distance, local index) order; ``widened`` is the quantized scan's
        honestly-charged superset size (``0`` on the exact scan).  Pure —
        the per-query widened accounting happens in :meth:`merged` — so a
        remote shard server (or a local fallback for a dead one) can call it
        for a single shard and stay bit-identical to the in-process merge.
        """
        shard = self.shards[shard_id]
        if self.shard_quantized is not None:
            local, exact, widened = quantized_filter_cut(
                self.shard_quantized[shard_id],
                self.embedder,
                query_vector,
                shard.vectors,
                min(p, len(shard)),
            )
            return local, exact, widened
        distances = filter_vector_distances(
            self.embedder, query_vector, shard.vectors
        )
        local = stable_smallest(distances, min(p, len(shard)))
        return local, distances[local], 0

    def merged(self, query_vector: np.ndarray, p: int) -> np.ndarray:
        """Global top-``p`` filter candidates, merged across shards.

        Identical — including tie-breaking by database index — to the
        unsharded ``FilterStage.order(query_vector, p)``: each shard list is
        stable-ordered and shard order equals global index order, so
        concatenation order breaks distance ties by ascending global index
        (see :func:`merge_shard_cuts`).  With a quantized table bound, each
        shard's cut goes through
        :func:`~repro.retrieval.quantized.quantized_filter_cut` — the
        per-shard candidates and their exact float64 distances are
        bit-identical to the exact scan, so the merge is too.
        """
        shard_distances: List[np.ndarray] = []
        shard_indices: List[np.ndarray] = []
        widened = 0
        for sid, shard in enumerate(self.shards):
            local, exact, spent = self.shard_cut(sid, query_vector, p)
            widened += spent
            shard_distances.append(exact)
            shard_indices.append(shard.offset + local)
        if self.shard_quantized is not None:
            self.widened_queries += 1
            self.widened_total += widened
        return merge_shard_cuts(shard_indices, shard_distances, p)

    def split(self, candidates: np.ndarray) -> List[ShardWork]:
        """Partition a global candidate list into per-shard refine work."""
        work: List[ShardWork] = []
        for sid, shard in enumerate(self.shards):
            mask = (candidates >= shard.offset) & (
                candidates < shard.offset + len(shard)
            )
            positions = np.flatnonzero(mask)
            if positions.size:
                work.append((sid, candidates[positions] - shard.offset, positions))
        return work

    def run(self, plan: QueryPlan) -> QueryPlan:
        """Rank per query via sharded filtering into ``plan.candidate_lists``."""
        plan.candidate_lists = [
            self.merged(vector, plan.p_eff) for vector in plan.query_vectors
        ]
        plan.shard_work = [self.split(c) for c in plan.candidate_lists]
        return plan


class ScanStage:
    """The degenerate filter of brute force: every position is a candidate."""

    stat_name = "filter"

    def __init__(self, n_database: int) -> None:
        # One shared candidate array (read-only by convention), so a large
        # batch does not allocate O(batch x database) identical arrays.
        self.all_positions = np.arange(n_database)

    def run(self, plan: QueryPlan) -> QueryPlan:
        """Mark every database position a candidate (brute-force baseline)."""
        plan.embedding_cost = 0
        plan.candidate_lists = [self.all_positions] * len(plan.objects)
        return plan


class RefineStage:
    """Evaluate exact distances from each query to its filter candidates.

    One object owns the pipeline's exact-distance access: the
    :class:`~repro.retrieval.context_binding.ContextBinding` (store-backed,
    cached pairs free) or the :class:`CountingDistance` wrapper (plain
    measures, nominal cost), plus every ``n_jobs`` fan-out rule.  All three
    retrievers and the async serving layer refine through this stage, so
    accounting can never drift between them.
    """

    stat_name = "refine"

    def __init__(
        self,
        distance: DistanceMeasure,
        database: Dataset,
        shards: Optional[Sequence[Any]] = None,
        bind: bool = True,
    ) -> None:
        self.database = database
        self.shards = list(shards) if shards is not None else None
        # ``bind=False`` forces plain counting mode even for a context:
        # a ContextBinding freezes the database→universe index mapping at
        # construction, which a mutable database (DynamicDatabase) would
        # silently invalidate.
        self._binding: Optional[ContextBinding] = (
            bind_context(distance, database) if bind else None
        )
        self._counting: Optional[CountingDistance] = (
            None if self._binding is not None else CountingDistance(distance)
        )
        #: Exact evaluations routed to each shard so far (sharded pipelines;
        #: store hits are free on the context-backed path).  This is the
        #: per-shard hit-rate signal a store-aware placement policy reads.
        self.shard_evaluations: Optional[np.ndarray] = (
            np.zeros(len(self.shards), dtype=int) if self.shards is not None else None
        )
        #: Candidate pairs *routed* to each shard so far (whether or not the
        #: store absorbed them).  ``1 - shard_evaluations / shard_routed`` is
        #: the per-shard store hit rate the cost-based planner fits.
        self.shard_routed: Optional[np.ndarray] = (
            np.zeros(len(self.shards), dtype=int) if self.shards is not None else None
        )

    # -- accounting ------------------------------------------------------

    @property
    def binding(self) -> Optional[ContextBinding]:
        """The context binding, when refining through a shared store."""
        return self._binding

    @property
    def counting(self) -> Optional[CountingDistance]:
        """The counting wrapper, when refining a plain measure."""
        return self._counting

    @property
    def calls(self) -> int:
        """Exact evaluations performed by this stage so far."""
        if self._binding is not None:
            return self._binding.calls
        return self._counting.calls

    def reset(self) -> None:
        """Reset the evaluation counter."""
        if self._binding is not None:
            self._binding.calls = 0
        else:
            self._counting.reset()

    # -- running ---------------------------------------------------------

    def run(self, plan: QueryPlan) -> QueryPlan:
        """Evaluate exact distances for each query's candidate list."""
        if not plan.objects:
            plan.exact_lists = []
            plan.refine_costs = []
            return plan
        if self.shards is not None and plan.shard_work is not None:
            if self._binding is not None:
                self._run_sharded_context(plan)
            else:
                self._run_sharded_counting(plan)
        else:
            if self._binding is not None:
                self._run_flat_context(plan)
            else:
                self._run_flat_counting(plan)
        return plan

    # -- flat (unsharded) paths -----------------------------------------

    def _run_flat_context(self, plan: QueryPlan) -> None:
        if plan.single:
            exact, spent = self._binding.distances_to(
                plan.objects[0], plan.candidate_lists[0]
            )
            plan.exact_lists = [exact]
            plan.refine_costs = [spent]
            return
        # The context resolves store hits in the parent and pools only the
        # missing (query, candidate) pairs; per-query refine cost is the
        # number of evaluations actually performed.
        exact_lists, computed = self._binding.distances_to_many(
            plan.objects, plan.candidate_lists, n_jobs=plan.n_jobs
        )
        plan.exact_lists = [np.asarray(exact, dtype=float) for exact in exact_lists]
        plan.refine_costs = list(computed)

    def _run_flat_counting(self, plan: QueryPlan) -> None:
        objects = plan.objects
        n_workers = resolve_jobs(plan.n_jobs)
        if not plan.single and n_workers > 1 and len(objects) > 1:
            ensure_parallel_safe(self._counting)
            inner, counters = split_counting(self._counting)
            items = [
                (qi, obj, 0, candidates)
                for qi, (obj, candidates) in enumerate(
                    zip(objects, plan.candidate_lists)
                )
            ]
            exact_by_query = parallel_refine(
                inner, [list(self.database)], items, n_workers
            )
            for counting in counters:
                counting.calls += plan.p_eff * len(objects)
            plan.exact_lists = [
                np.asarray(exact_by_query[qi], dtype=float)
                for qi in range(len(objects))
            ]
        else:
            plan.exact_lists = [
                np.asarray(
                    self._counting.compute_many(
                        obj, [self.database[int(i)] for i in candidates]
                    ),
                    dtype=float,
                )
                for obj, candidates in zip(objects, plan.candidate_lists)
            ]
        plan.refine_costs = [None] * len(objects)

    # -- sharded paths ---------------------------------------------------

    def _run_sharded_context(self, plan: QueryPlan) -> None:
        """Store-aware per-(query, shard) refine through the shared store.

        Work is grouped query-major, then shard by shard: the context
        resolves each group's store hits in the parent and evaluates only
        the missing pairs, so a shard whose pairs are fully cached performs
        zero exact evaluations (recorded in :attr:`shard_evaluations`).
        Grouping cannot change results or per-query costs — a query's
        candidates are unique and shard ranges are disjoint, so the groups
        partition exactly the pairs the ungrouped call would resolve.
        """
        objects = plan.objects
        plan.exact_lists = [
            np.empty(c.shape[0], dtype=float) for c in plan.candidate_lists
        ]
        plan.refine_costs = [0] * len(objects)
        if plan.single:
            # Preserve the serial scalar path of the original per-query
            # code: one store-resolved evaluation batch per shard group.
            obj = objects[0]
            candidates = plan.candidate_lists[0]
            for sid, _local, positions in plan.shard_work[0]:
                values, spent = self._binding.distances_to(
                    obj, candidates[positions]
                )
                plan.exact_lists[0][positions] = values
                plan.refine_costs[0] += spent
                self.shard_evaluations[sid] += spent
                self.shard_routed[sid] += positions.size
            return
        flat_keys: List[Tuple[int, int, np.ndarray]] = []
        flat_objects: List[Any] = []
        flat_targets: List[np.ndarray] = []
        for qi, (obj, work) in enumerate(zip(objects, plan.shard_work)):
            for sid, _local, positions in work:
                flat_keys.append((qi, sid, positions))
                flat_objects.append(obj)
                flat_targets.append(plan.candidate_lists[qi][positions])
        values_list, computed = self._binding.distances_to_many(
            flat_objects, flat_targets, n_jobs=plan.n_jobs
        )
        for (qi, sid, positions), values, spent in zip(
            flat_keys, values_list, computed
        ):
            plan.exact_lists[qi][positions] = values
            plan.refine_costs[qi] += spent
            self.shard_evaluations[sid] += spent
            self.shard_routed[sid] += positions.size

    def _run_sharded_counting(self, plan: QueryPlan) -> None:
        objects = plan.objects
        shards = self.shards
        plan.exact_lists = [
            np.empty(c.shape[0], dtype=float) for c in plan.candidate_lists
        ]
        plan.refine_costs = [None] * len(objects)
        n_workers = resolve_jobs(plan.n_jobs)
        n_units = (
            len(plan.shard_work[0])
            if plan.single
            else len(objects) * len(shards)
        )
        if n_workers > 1 and n_units > 1:
            ensure_parallel_safe(self._counting)
            inner, counters = split_counting(self._counting)
            items = [
                ((qi, sid), obj, sid, local)
                for qi, (obj, work) in enumerate(zip(objects, plan.shard_work))
                for sid, local, _ in work
            ]
            by_key: Dict[Any, np.ndarray] = parallel_refine(
                inner, [shard.objects for shard in shards], items, n_workers
            )
            for counting in counters:
                counting.calls += int(plan.p_eff) * len(objects)
            for qi, work in enumerate(plan.shard_work):
                for sid, local, positions in work:
                    plan.exact_lists[qi][positions] = by_key[(qi, sid)]
                    self.shard_evaluations[sid] += int(local.size)
                    self.shard_routed[sid] += int(local.size)
        else:
            for qi, (obj, work) in enumerate(zip(objects, plan.shard_work)):
                for sid, local, positions in work:
                    shard = shards[sid]
                    plan.exact_lists[qi][positions] = self._counting.compute_many(
                        obj, [shard.objects[int(i)] for i in local]
                    )
                    self.shard_evaluations[sid] += int(local.size)
                    self.shard_routed[sid] += int(local.size)


class MergeStage:
    """Order refined candidates into results (ties by database index)."""

    stat_name = "merge"

    def run(self, plan: QueryPlan) -> QueryPlan:
        """Assemble per-query RetrievalResults from the refined distances."""
        plan.results = [
            build_retrieval_result(
                candidates,
                exact,
                plan.k_eff,
                plan.p_eff,
                plan.embedding_cost,
                refine_cost=cost,
            )
            for candidates, exact, cost in zip(
                plan.candidate_lists, plan.exact_lists, plan.refine_costs
            )
        ]
        return plan


def collect_plan_stats(
    plan: QueryPlan,
    stage_seconds: Dict[str, float],
    refine_evaluations: int,
) -> Dict[str, Any]:
    """Assemble the ``plan.stats`` dict from measured stage timings.

    Pure bookkeeping over values measured by the caller (no clocks here):
    per-stage wall-clock seconds plus the evaluation counters the
    cost-based planner fits its model from.  ``refine_evaluations`` is the
    refine stage's exact-evaluation delta across the batch.
    """
    n_queries = len(plan.objects)
    candidates = int(sum(c.shape[0] for c in plan.candidate_lists))
    return {
        "n_queries": n_queries,
        "k_eff": int(plan.k_eff),
        "p_eff": int(plan.p_eff),
        "stage_seconds": dict(stage_seconds),
        "embedding_evaluations": int(plan.embedding_cost) * n_queries,
        "refine_evaluations": int(refine_evaluations),
        "candidates": candidates,
    }


# --------------------------------------------------------------------------- #
# The engine                                                                  #
# --------------------------------------------------------------------------- #


class QueryEngine:
    """A staged retrieval pipeline: embed → filter → refine → merge.

    Build one with :meth:`filter_refine`, :meth:`sharded` or
    :meth:`brute_force` (or pass custom stages).  ``embed`` may be ``None``
    (brute force has nothing to embed); the remaining stages are required.
    """

    def __init__(
        self,
        embed: Optional[EmbedStage],
        filter: Any,
        refine: RefineStage,
        merge: Optional[MergeStage],
        n_database: int,
    ) -> None:
        self.embed = embed
        self.filter = filter
        self.refine = refine
        self.merge = merge
        self.n_database = int(n_database)

    @property
    def stages(self) -> List[Any]:
        """The pipeline's stages, in run order."""
        return [
            stage
            for stage in (self.embed, self.filter, self.refine, self.merge)
            if stage is not None
        ]

    # -- construction ----------------------------------------------------

    @classmethod
    def filter_refine(
        cls,
        distance: DistanceMeasure,
        database: Dataset,
        embedder: Union[QuerySensitiveModel, Embedding],
        database_vectors: np.ndarray,
        quantized: Optional[QuantizedVectors] = None,
    ) -> "QueryEngine":
        """The unsharded filter-and-refine pipeline."""
        return cls(
            embed=EmbedStage(embedder),
            filter=FilterStage(embedder, database_vectors, quantized=quantized),
            refine=RefineStage(distance, database),
            merge=MergeStage(),
            n_database=len(database),
        )

    @classmethod
    def sharded(
        cls,
        distance: DistanceMeasure,
        database: Dataset,
        embedder: Union[QuerySensitiveModel, Embedding],
        shards: Sequence[Any],
        quantized: Optional[QuantizedVectors] = None,
    ) -> "QueryEngine":
        """The sharded filter-and-refine pipeline (store-aware refine)."""
        return cls(
            embed=EmbedStage(embedder),
            filter=ShardedFilterStage(embedder, shards, quantized=quantized),
            refine=RefineStage(distance, database, shards=shards),
            merge=MergeStage(),
            n_database=len(database),
        )

    @classmethod
    def brute_force(
        cls, distance: DistanceMeasure, database: Dataset
    ) -> "QueryEngine":
        """The exact-scan pipeline (no embedding, every position refined).

        Built without a merge stage: brute-force callers rank the full
        scan themselves (their ``k`` validation is strict, not clamped).
        """
        return cls(
            embed=None,
            filter=ScanStage(len(database)),
            refine=RefineStage(distance, database),
            merge=None,
            n_database=len(database),
        )

    # -- plans -----------------------------------------------------------

    def make_plan(
        self,
        objects: Sequence[Any],
        k: int,
        p: Optional[int],
        n_jobs: Optional[int] = None,
        single: bool = False,
    ) -> QueryPlan:
        """Clamp the parameters and seed a plan for one query batch."""
        objects = list(objects)
        plan = QueryPlan(objects=objects, k=k, p=p, n_jobs=n_jobs, single=single)
        if p is None:
            # Scan pipelines refine everything; the nominal per-query cost
            # is the database size.
            plan.k_eff = min(int(k), self.n_database)
            plan.p_eff = self.n_database
        else:
            plan.k_eff, plan.p_eff = clamp_query_params(k, p, self.n_database)
        return plan

    def run(self, plan: QueryPlan) -> QueryPlan:
        """Run every stage over the plan, in order, timing each stage.

        Fills ``plan.stats`` with per-stage wall-clock seconds and
        evaluation counters (the cost-model inputs of the query planner)
        and attaches the shared dict to every result.  Timing lives here —
        not inside the stages — so merge/rank/order code stays clock-free
        (the RP004 determinism invariant).
        """
        stage_seconds: Dict[str, float] = {}
        refine_before = self.refine.calls
        for stage in self.stages:
            started = time.perf_counter()
            plan = stage.run(plan)
            key = getattr(stage, "stat_name", type(stage).__name__)
            stage_seconds[key] = (
                stage_seconds.get(key, 0.0) + time.perf_counter() - started
            )
        plan.stats = collect_plan_stats(
            plan, stage_seconds, self.refine.calls - refine_before
        )
        for result in plan.results:
            result.stats = plan.stats
        return plan

    def prepare(self, plan: QueryPlan) -> QueryPlan:
        """Run only the parent-CPU stages (embed + filter), timed.

        This is the async serving split: the serving layer prepares query
        ``i+1`` here while query ``i``'s refine batch runs on the worker
        pool, then completes the refine/merge itself.  ``plan.stats`` gets
        the embed/filter timings (no refine/merge entries).
        """
        stage_seconds: Dict[str, float] = {}
        if self.embed is not None:
            started = time.perf_counter()
            plan = self.embed.run(plan)
            stage_seconds["embed"] = time.perf_counter() - started
        started = time.perf_counter()
        plan = self.filter.run(plan)
        stage_seconds["filter"] = time.perf_counter() - started
        plan.stats = collect_plan_stats(plan, stage_seconds, 0)
        return plan

    # -- conveniences ----------------------------------------------------

    def query(
        self, obj: Any, k: int, p: int, n_jobs: Optional[int] = None
    ) -> RetrievalResult:
        """Run the full pipeline for one query object."""
        plan = self.run(self.make_plan([obj], k, p, n_jobs=n_jobs, single=True))
        return plan.results[0]

    def query_many(
        self,
        objects: Sequence[Any],
        k: int,
        p: int,
        n_jobs: Optional[int] = None,
    ) -> List[RetrievalResult]:
        """Run the full pipeline for a batch of query objects."""
        objects = list(objects)
        # Clamping validates (k, p) even for an empty batch, exactly like
        # the scalar path.
        plan = self.make_plan(objects, k, p, n_jobs=n_jobs)
        if not objects:
            return []
        plan = self.run(plan)
        return plan.results
