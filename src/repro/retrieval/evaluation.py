"""Accuracy-versus-cost evaluation (the protocol of Sec. 9).

The paper's definition of success is strict: a query is answered correctly,
for a given ``k``, only if **all** of its ``k`` true nearest neighbors appear
among the ``p`` candidates kept by the filter step (the refine step then
identifies them exactly, since it uses exact distances).  For an accuracy
target ``B`` (e.g. 90%), the relevant quantity is therefore the smallest
``p`` for which at least a fraction ``B`` of the queries keep all their true
neighbors; the cost per query is that ``p`` plus the embedding cost.

The implementation precomputes, for every query, the *rank* of each true
neighbor in the filter ordering; every (k, B) combination then reduces to a
quantile computation, so sweeping k from 1 to 50 and several accuracy levels
is essentially free once the ranks are known.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.embeddings.base import Embedding
from repro.exceptions import RetrievalError
from repro.retrieval.knn import NeighborTable


@dataclass
class FilterRankResult:
    """Filter-step ranks of the true nearest neighbors, for one embedding.

    Attributes
    ----------
    rank_matrix:
        ``(n_queries, k_max)`` array; entry ``[i, j]`` is the 1-based position
        of query ``i``'s ``(j+1)``-th true nearest neighbor in the filter
        ordering of that query.
    embedding_cost:
        Exact distance computations needed to embed one query.
    dim:
        Dimensionality of the embedding that produced the ranks.
    """

    rank_matrix: np.ndarray
    embedding_cost: int
    dim: int

    def __post_init__(self) -> None:
        self.rank_matrix = np.asarray(self.rank_matrix, dtype=int)
        if self.rank_matrix.ndim != 2:
            raise RetrievalError("rank_matrix must be 2D (queries x k_max)")
        if np.any(self.rank_matrix < 1):
            raise RetrievalError("ranks are 1-based and must be >= 1")

    @property
    def n_queries(self) -> int:
        """Number of evaluated queries (rows of the rank matrix)."""
        return int(self.rank_matrix.shape[0])

    @property
    def k_max(self) -> int:
        """Largest ``k`` the rank matrix covers (its column count)."""
        return int(self.rank_matrix.shape[1])


@dataclass(frozen=True)
class AccuracyCostPoint:
    """One point of the paper's accuracy/cost trade-off curves.

    Attributes
    ----------
    k:
        Number of nearest neighbors that must all be retrieved.
    accuracy:
        Fraction of queries for which that must succeed (e.g. 0.95).
    dim:
        Embedding dimensionality that achieves the minimum cost.
    p:
        Filter-candidate count that achieves the target at that
        dimensionality.
    cost:
        Exact distance computations per query (embedding cost + p), capped
        at the brute-force cost.
    """

    k: int
    accuracy: float
    dim: int
    p: int
    cost: int


def filter_ranks(
    embedder: Union[QuerySensitiveModel, Embedding],
    database_vectors: np.ndarray,
    query_vectors: np.ndarray,
    ground_truth: NeighborTable,
) -> FilterRankResult:
    """Compute the filter-step ranks of every query's true nearest neighbors.

    Parameters
    ----------
    embedder:
        The trained model (query-sensitive filter distance) or plain
        embedding (L1 filter distance).
    database_vectors:
        Precomputed ``(n_database, d)`` matrix of database embeddings.
    query_vectors:
        Precomputed ``(n_queries, d)`` matrix of query embeddings.
    ground_truth:
        Exact nearest neighbors of each query
        (:func:`repro.retrieval.knn.ground_truth_neighbors`).
    """
    database_vectors = np.asarray(database_vectors, dtype=float)
    query_vectors = np.asarray(query_vectors, dtype=float)
    if database_vectors.ndim != 2 or query_vectors.ndim != 2:
        raise RetrievalError("database_vectors and query_vectors must be 2D")
    if database_vectors.shape[1] != query_vectors.shape[1]:
        raise RetrievalError("database and query vectors must share dimensionality")
    if query_vectors.shape[0] != ground_truth.n_queries:
        raise RetrievalError(
            "query_vectors and ground_truth must describe the same queries"
        )
    if np.any(ground_truth.indices >= database_vectors.shape[0]):
        raise RetrievalError("ground truth references objects outside the database")

    n_queries = query_vectors.shape[0]
    k_max = ground_truth.k_max
    n_database = database_vectors.shape[0]
    rank_matrix = np.empty((n_queries, k_max), dtype=int)
    is_model = isinstance(embedder, QuerySensitiveModel)
    database_positions = np.arange(n_database)
    for qi in range(n_queries):
        qvec = query_vectors[qi]
        if is_model:
            filter_dists = embedder.distances_to(qvec, database_vectors)
        else:
            filter_dists = np.abs(database_vectors - qvec[None, :]).sum(axis=1)
        # rank of database object j in the stable filter ordering = number of
        # objects with strictly smaller filter distance + number of equal
        # distances at smaller indices + 1 (ties broken by database index,
        # matching the stable argsort-based candidate selection).  Computing
        # the k_max needed ranks directly is O(n * k_max) instead of sorting
        # the whole database per query.
        neighbors = ground_truth.indices[qi]
        neighbor_dists = filter_dists[neighbors]
        smaller = (filter_dists[None, :] < neighbor_dists[:, None]).sum(axis=1)
        ties_before = (
            (filter_dists[None, :] == neighbor_dists[:, None])
            & (database_positions[None, :] < neighbors[:, None])
        ).sum(axis=1)
        rank_matrix[qi] = smaller + ties_before + 1
    return FilterRankResult(
        rank_matrix=rank_matrix,
        embedding_cost=int(embedder.cost),
        dim=int(embedder.dim),
    )


def required_filter_sizes(rank_result: FilterRankResult, k: int) -> np.ndarray:
    """Per-query minimal ``p`` that keeps all ``k`` true neighbors.

    For query ``i`` this is the maximum filter rank among its ``k`` true
    nearest neighbors: any smaller ``p`` would drop at least one of them.
    """
    if not 1 <= k <= rank_result.k_max:
        raise RetrievalError(f"k must be in [1, {rank_result.k_max}], got {k}")
    return rank_result.rank_matrix[:, :k].max(axis=1)


def cost_for_accuracy(
    rank_result: FilterRankResult,
    k: int,
    accuracy: float,
    database_size: int,
) -> AccuracyCostPoint:
    """Minimum per-query cost achieving an accuracy target at fixed ``d``.

    Parameters
    ----------
    rank_result:
        Filter ranks for one embedding dimensionality.
    k:
        All ``k`` true neighbors must be retrieved.
    accuracy:
        Required fraction of successful queries, in (0, 1].
    database_size:
        Size of the database; costs are capped at this value because a
        method that needs more work than brute force would simply not be
        used.
    """
    if not 0.0 < accuracy <= 1.0:
        raise RetrievalError(f"accuracy must be in (0, 1], got {accuracy}")
    if database_size <= 0:
        raise RetrievalError("database_size must be positive")
    required = np.sort(required_filter_sizes(rank_result, k))
    n_queries = required.shape[0]
    # Smallest p such that at least ceil(accuracy * n) queries succeed.
    needed_successes = int(np.ceil(accuracy * n_queries))
    needed_successes = min(max(needed_successes, 1), n_queries)
    p = int(required[needed_successes - 1])
    cost = min(rank_result.embedding_cost + p, database_size)
    return AccuracyCostPoint(
        k=int(k),
        accuracy=float(accuracy),
        dim=rank_result.dim,
        p=p,
        cost=int(cost),
    )


def success_rate(rank_result: FilterRankResult, k: int, p: int) -> float:
    """Fraction of queries whose ``k`` true neighbors all survive a size-``p`` filter."""
    if p < 1:
        raise RetrievalError("p must be at least 1")
    required = required_filter_sizes(rank_result, k)
    return float(np.mean(required <= p))


def retrieval_recall(results: Sequence, ground_truth: NeighborTable, k: int) -> float:
    """Fraction of queries whose reported neighbors are exactly correct.

    Applies the paper's strict criterion to actual retrieval output (a
    sequence of :class:`~repro.retrieval.filter_refine.RetrievalResult`, from
    the unsharded or sharded pipeline): a query counts as correct only if
    *all* ``k`` true nearest neighbors appear among its reported top ``k``.
    Complementary to :func:`success_rate`, which predicts the same quantity
    from filter ranks without running the refine step.
    """
    results = list(results)
    if len(results) != ground_truth.n_queries:
        raise RetrievalError(
            f"got {len(results)} results for {ground_truth.n_queries} queries"
        )
    if not 1 <= k <= ground_truth.k_max:
        raise RetrievalError(f"k must be in [1, {ground_truth.k_max}], got {k}")
    correct = 0
    for qi, result in enumerate(results):
        reported = set(int(i) for i in result.neighbor_indices[:k])
        if all(int(i) in reported for i in ground_truth.indices[qi, :k]):
            correct += 1
    return correct / len(results)
