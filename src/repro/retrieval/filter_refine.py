"""Filter-and-refine retrieval (Sec. 8 of the paper).

Given a query ``q``:

1. **Embedding step** — compute ``F(q)`` by measuring the exact distances
   from ``q`` to the embedding's reference/pivot objects (cost =
   ``embedding.cost`` exact distances).
2. **Filter step** — rank the precomputed database vectors by a cheap vector
   distance.  For a query-sensitive model that distance is ``D_out`` with the
   per-query weights ``A_i(q)``; for plain embeddings it is an (optionally
   weighted) L1 distance.  This step touches no exact distances.
3. **Refine step** — evaluate the exact distance between ``q`` and the top
   ``p`` filter candidates and return the best ``k`` (cost = ``p`` exact
   distances).

Total cost per query: ``embedding.cost + p`` exact distance computations —
the quantity every figure and table of the paper reports.

Batching: the filter cut uses an O(n) ``argpartition`` selection instead of a
full sort, the refine step evaluates all ``p`` exact distances through one
batched ``compute_many`` call, and :meth:`FilterRefineRetriever.query_many`
embeds all queries with one batched ``embed_many`` call — with results and
per-query cost accounting identical to the scalar loops.

Parameter clamping
------------------
``k`` and ``p`` are *clamped* rather than rejected: ``p`` is raised to at
least ``k`` (the refine step must be allowed to return ``k`` results) and
both are capped at the database size, so every query returns exactly
``min(k, n)`` neighbors.  With ``p`` clamped to ``n`` the filter keeps
everything and the results — including tie order — equal brute force.

Tie-breaking
------------
Both the filter cut and the refine step resolve distance ties by the smallest
*database index*, exactly like :class:`~repro.retrieval.brute_force.
BruteForceRetriever`'s stable scan.  This makes results independent of the
filter ordering among equal exact distances, which is what allows
:class:`~repro.retrieval.sharded.ShardedRetriever` to merge per-shard
candidates into bit-identical global results.

Parallelism
-----------
:meth:`FilterRefineRetriever.query_many` accepts ``n_jobs``: queries are
embedded and filtered in the parent process (filtering touches no exact
distances), and the refine work is spread over worker processes through
:func:`repro.distances.parallel.parallel_refine`.  Cost accounting stays
exact the same way the matrix builders keep it exact: top-level
:class:`~repro.distances.base.CountingDistance` wrappers stay in the parent
and are charged one evaluation per refined candidate, while workers evaluate
the inner measure.  Identity-keyed :class:`~repro.distances.base.
CachedDistance` wrappers are rejected up front (their keys cannot survive the
process boundary).

Shared store
------------
When the retriever is built on a
:class:`~repro.distances.context.DistanceContext` (whose universe must
contain the database), the refine step charges its evaluations against the
context's store: a (query, candidate) pair already evaluated — by the
ground-truth scan, an embedding anchor, or a previous query — costs
*nothing*, matching the paper's treatment of precomputed distances as a
one-time preprocessing cost.  ``RetrievalResult.refine_distance_computations``
then reports the evaluations actually performed for that query (``0`` for a
fully warm store) instead of the nominal ``p``; neighbor results stay
bit-identical to the context-free path.  ``n_jobs`` fan-out goes through
:meth:`~repro.distances.context.DistanceContext.distances_to_many`, which
keeps the store and the counters in the parent and ships only the missing
index pairs to the workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.datasets.base import Dataset
from repro.distances.base import CountingDistance, DistanceMeasure
from repro.distances.parallel import (
    ensure_parallel_safe,
    parallel_refine,
    resolve_jobs,
    split_counting,
)
from repro.embeddings.base import Embedding
from repro.exceptions import RetrievalError
from repro.retrieval.context_binding import bind_context


def _stable_smallest(values: np.ndarray, p: Optional[int]) -> np.ndarray:
    """Indices of the ``p`` smallest values, in stable ascending order.

    Exactly equivalent to ``np.argsort(values, kind="stable")[:p]`` but uses
    :func:`np.argpartition` for the top-``p`` cut, so only the survivors pay
    the sort.  Boundary ties are resolved by smallest index, matching the
    stable full sort.
    """
    values = np.asarray(values)
    n = values.shape[0]
    if p is None or p >= n:
        return np.argsort(values, kind="stable")
    if p <= 0:
        return np.zeros(0, dtype=int)
    partition = np.argpartition(values, p - 1)[:p]
    # argpartition breaks ties at the cut arbitrarily; rebuild the selection
    # so that equal values at the boundary keep the lowest database indices.
    boundary = values[partition].max()
    below = np.flatnonzero(values < boundary)
    needed = p - below.size
    chosen = np.concatenate([below, np.flatnonzero(values == boundary)[:needed]])
    order = np.argsort(values[chosen], kind="stable")
    return chosen[order]


def _clamp_query_params(k: int, p: int, n: int) -> Tuple[int, int]:
    """Clamp ``(k, p)`` against a database of ``n`` objects.

    ``k`` and ``p`` must be positive; beyond that they are clamped rather
    than rejected: ``k`` is capped at ``n`` (a query cannot have more
    neighbors than the database holds) and ``p`` is raised to at least the
    effective ``k`` (so the refine step can return ``k`` results) and capped
    at ``n`` (refining more candidates than exist is meaningless).  Returns
    the effective ``(k, p)``; the refine cost charged per query is the
    effective ``p``.
    """
    if k < 1:
        raise RetrievalError(f"k must be a positive integer, got {k}")
    if p < 1:
        raise RetrievalError(f"p must be a positive integer, got {p}")
    k_eff = min(int(k), n)
    p_eff = min(max(int(p), k_eff), n)
    return k_eff, p_eff


def _filter_distances(
    embedder: Union[QuerySensitiveModel, Embedding],
    query_vector: np.ndarray,
    database_vectors: np.ndarray,
) -> np.ndarray:
    """Filter-step distances from one embedded query to database vectors.

    Row-wise over ``database_vectors``, so evaluating it per shard and
    concatenating yields bit-identical values to one full-database call.
    """
    query_vector = np.asarray(query_vector, dtype=float)
    if isinstance(embedder, QuerySensitiveModel):
        return embedder.distances_to(query_vector, database_vectors)
    return np.abs(database_vectors - query_vector[None, :]).sum(axis=1)


def _refine_order(exact: np.ndarray, candidates: np.ndarray, k: int) -> np.ndarray:
    """Positions of the ``k`` best refined candidates, ties by database index.

    ``np.lexsort`` with the exact distance as the primary key and the global
    database index as the secondary key reproduces exactly the tie-stable
    order of a brute-force scan, regardless of the order the candidates
    survived the filter in.
    """
    return np.lexsort((candidates, exact))[:k]


def _build_retrieval_result(
    candidates: np.ndarray,
    exact: np.ndarray,
    k_eff: int,
    p_eff: int,
    embedding_cost: int,
    refine_cost: Optional[int] = None,
) -> "RetrievalResult":
    """Assemble a :class:`RetrievalResult` from refined candidate distances.

    Shared by the unsharded and sharded retrievers so the neighbor ordering
    and cost accounting can never diverge between the two paths.
    ``refine_cost`` defaults to the nominal ``p``; context-backed retrievers
    pass the number of evaluations actually performed (cached pairs are
    free).
    """
    order = _refine_order(exact, candidates, k_eff)
    return RetrievalResult(
        neighbor_indices=candidates[order],
        neighbor_distances=exact[order],
        candidate_indices=candidates,
        embedding_distance_computations=int(embedding_cost),
        refine_distance_computations=int(
            p_eff if refine_cost is None else refine_cost
        ),
    )


@dataclass
class RetrievalResult:
    """Outcome of one filter-and-refine query.

    Attributes
    ----------
    neighbor_indices:
        Database indices of the ``min(k, n)`` reported neighbors, best first.
    neighbor_distances:
        Their exact distances to the query.
    candidate_indices:
        The (effective) ``p`` database indices that survived the filter step,
        in filter order.
    embedding_distance_computations:
        Exact distances spent embedding the query (the embedder's nominal
        per-query cost).
    refine_distance_computations:
        Exact distances spent in the refine step.  Equals the effective
        ``p`` for a plain distance measure; for a retriever backed by a
        :class:`~repro.distances.context.DistanceContext` it is the number
        of evaluations actually performed — pairs already in the shared
        store are free, so a fully warm store reports ``0``.
    """

    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray
    candidate_indices: np.ndarray
    embedding_distance_computations: int
    refine_distance_computations: int

    @property
    def total_distance_computations(self) -> int:
        """The paper's cost metric: embedding cost plus refine cost."""
        return self.embedding_distance_computations + self.refine_distance_computations


class FilterRefineRetriever:
    """Approximate k-NN retrieval through an embedding.

    Parameters
    ----------
    distance:
        The exact distance measure (used for the refine step and, through
        the embedding, for the embedding step).  Passing a
        :class:`~repro.distances.context.DistanceContext` whose universe
        contains the database makes refine evaluations go through its
        shared store — cached pairs are free (see the module docstring).
    database:
        The database to search.
    embedder:
        Either a trained :class:`~repro.core.model.QuerySensitiveModel`
        (filter distances are then the query-sensitive ``D_out``) or any
        :class:`~repro.embeddings.base.Embedding` (filter distances are plain
        L1, the choice of the original BoostMap and FastMap baselines).
    database_vectors:
        Optional precomputed ``(n, d)`` matrix of database embeddings.  When
        omitted, the whole database is embedded at construction time (a
        one-time preprocessing cost, not charged to queries).
    """

    def __init__(
        self,
        distance: DistanceMeasure,
        database: Dataset,
        embedder: Union[QuerySensitiveModel, Embedding],
        database_vectors: Optional[np.ndarray] = None,
    ) -> None:
        if not isinstance(distance, DistanceMeasure):
            raise RetrievalError("distance must be a DistanceMeasure instance")
        if not isinstance(database, Dataset):
            raise RetrievalError("database must be a Dataset")
        if not isinstance(embedder, (QuerySensitiveModel, Embedding)):
            raise RetrievalError(
                "embedder must be a QuerySensitiveModel or an Embedding"
            )
        self.database = database
        self.embedder = embedder
        self._binding = bind_context(distance, database)
        self._refine_distance: Optional[CountingDistance] = (
            None if self._binding is not None else CountingDistance(distance)
        )
        if database_vectors is None:
            database_vectors = embedder.embed_many(list(database))
        self.database_vectors = np.asarray(database_vectors, dtype=float)
        if self.database_vectors.shape != (len(database), self.dim):
            raise RetrievalError(
                f"database_vectors must have shape ({len(database)}, {self.dim}), "
                f"got {self.database_vectors.shape}"
            )

    @property
    def dim(self) -> int:
        """Dimensionality of the embedding used for filtering."""
        return self.embedder.dim

    @property
    def embedding_cost(self) -> int:
        """Exact distances needed to embed one query."""
        return self.embedder.cost

    @property
    def refine_distance_evaluations(self) -> int:
        """Total exact distances spent refining, across all queries so far.

        For a context-backed retriever this counts the evaluations actually
        performed (store hits are free).
        """
        if self._binding is not None:
            return self._binding.calls
        return self._refine_distance.calls

    def filter_distances(self, query_vector: np.ndarray) -> np.ndarray:
        """Vector distances from an embedded query to every database vector."""
        return _filter_distances(self.embedder, query_vector, self.database_vectors)

    def filter_order(self, query_vector: np.ndarray, p: Optional[int] = None) -> np.ndarray:
        """Database indices sorted by increasing filter distance.

        With ``p`` given, only the ``p`` best candidates are returned: the
        cut uses :func:`np.argpartition` (O(n) selection) and only those
        ``p`` survivors are sorted, instead of a full O(n log n) stable sort
        over the whole database.  The result is identical — including tie
        breaking by database index — to ``filter_order(...)[:p]``.
        """
        return _stable_smallest(self.filter_distances(query_vector), p)

    def _refine(self, obj: Any, candidates: np.ndarray, k_eff: int, p_eff: int) -> RetrievalResult:
        """Refine filter candidates with one batched exact-distance call."""
        if self._binding is not None:
            exact, spent = self._binding.distances_to(obj, candidates)
            return _build_retrieval_result(
                candidates, exact, k_eff, p_eff, self.embedding_cost,
                refine_cost=spent,
            )
        candidate_objects = [self.database[int(i)] for i in candidates]
        exact = np.asarray(
            self._refine_distance.compute_many(obj, candidate_objects), dtype=float
        )
        return _build_retrieval_result(
            candidates, exact, k_eff, p_eff, self.embedding_cost
        )

    def query(self, obj: Any, k: int, p: int) -> RetrievalResult:
        """Retrieve the approximate ``k`` nearest neighbors of ``obj``.

        The refine step evaluates all ``p`` exact distances in one batched
        ``compute_many`` call (the counting wrapper charges exactly ``p``
        evaluations, as in the scalar path).

        Parameters
        ----------
        obj:
            The query object (in the original space).
        k:
            Number of neighbors to return; clamped to the database size, so
            exactly ``min(k, n)`` neighbors come back.
        p:
            Number of filter candidates to refine with exact distances;
            clamped to ``[min(k, n), n]`` (see the module docstring).
        """
        k_eff, p_eff = _clamp_query_params(k, p, len(self.database))
        query_vector = self.embedder.embed(obj)
        candidates = self.filter_order(query_vector, p_eff)
        return self._refine(obj, candidates, k_eff, p_eff)

    def query_many(
        self,
        objects: Sequence[Any],
        k: int,
        p: int,
        n_jobs: Optional[int] = None,
    ) -> List[RetrievalResult]:
        """Batched :meth:`query` over a sequence of query objects.

        All queries are embedded with one (batched) ``embed_many`` call, then
        each query's candidates are refined with one batched exact-distance
        call.  Results are identical to ``[self.query(obj, k, p) for obj in
        objects]``, including per-query cost accounting.

        With ``n_jobs > 1`` (or ``-1`` for all CPUs) the refine work is
        spread over a process pool; embedding and filtering stay in the
        parent, results and counter charges are bit-identical to the serial
        path, and the distance measure plus the database objects must be
        picklable.
        """
        k_eff, p_eff = _clamp_query_params(k, p, len(self.database))
        objects = list(objects)
        if not objects:
            return []
        query_vectors = self.embedder.embed_many(objects)
        candidate_lists = [
            self.filter_order(query_vector, p_eff) for query_vector in query_vectors
        ]

        if self._binding is not None:
            # The context resolves store hits in the parent and pools only
            # the missing (query, candidate) pairs; per-query refine cost is
            # the number of evaluations actually performed.
            exact_lists, computed = self._binding.distances_to_many(
                objects, candidate_lists, n_jobs=n_jobs
            )
            return [
                _build_retrieval_result(
                    candidates,
                    np.asarray(exact, dtype=float),
                    k_eff,
                    p_eff,
                    self.embedding_cost,
                    refine_cost=spent,
                )
                for candidates, exact, spent in zip(
                    candidate_lists, exact_lists, computed
                )
            ]

        n_workers = resolve_jobs(n_jobs)
        if n_workers > 1 and len(objects) > 1:
            ensure_parallel_safe(self._refine_distance)
            inner, counters = split_counting(self._refine_distance)
            items = [
                (qi, obj, 0, candidates)
                for qi, (obj, candidates) in enumerate(zip(objects, candidate_lists))
            ]
            exact_by_query = parallel_refine(
                inner, [list(self.database)], items, n_workers
            )
            for counting in counters:
                counting.calls += p_eff * len(objects)
            return [
                _build_retrieval_result(
                    candidate_lists[qi],
                    np.asarray(exact_by_query[qi], dtype=float),
                    k_eff,
                    p_eff,
                    self.embedding_cost,
                )
                for qi in range(len(objects))
            ]

        return [
            self._refine(obj, candidates, k_eff, p_eff)
            for obj, candidates in zip(objects, candidate_lists)
        ]
