"""Filter-and-refine retrieval (Sec. 8 of the paper).

Given a query ``q``:

1. **Embedding step** — compute ``F(q)`` by measuring the exact distances
   from ``q`` to the embedding's reference/pivot objects (cost =
   ``embedding.cost`` exact distances).
2. **Filter step** — rank the precomputed database vectors by a cheap vector
   distance.  For a query-sensitive model that distance is ``D_out`` with the
   per-query weights ``A_i(q)``; for plain embeddings it is an (optionally
   weighted) L1 distance.  This step touches no exact distances.
3. **Refine step** — evaluate the exact distance between ``q`` and the top
   ``p`` filter candidates and return the best ``k`` (cost = ``p`` exact
   distances).

Total cost per query: ``embedding.cost + p`` exact distance computations —
the quantity every figure and table of the paper reports.

Batching: the filter cut uses an O(n) ``argpartition`` selection instead of a
full sort, the refine step evaluates all ``p`` exact distances through one
batched ``compute_many`` call, and :meth:`FilterRefineRetriever.query_many`
embeds all queries with one batched ``embed_many`` call — with results and
per-query cost accounting identical to the scalar loops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Union

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.datasets.base import Dataset
from repro.distances.base import CountingDistance, DistanceMeasure
from repro.embeddings.base import Embedding
from repro.exceptions import RetrievalError


def _stable_smallest(values: np.ndarray, p: Optional[int]) -> np.ndarray:
    """Indices of the ``p`` smallest values, in stable ascending order.

    Exactly equivalent to ``np.argsort(values, kind="stable")[:p]`` but uses
    :func:`np.argpartition` for the top-``p`` cut, so only the survivors pay
    the sort.  Boundary ties are resolved by smallest index, matching the
    stable full sort.
    """
    values = np.asarray(values)
    n = values.shape[0]
    if p is None or p >= n:
        return np.argsort(values, kind="stable")
    if p <= 0:
        return np.zeros(0, dtype=int)
    partition = np.argpartition(values, p - 1)[:p]
    # argpartition breaks ties at the cut arbitrarily; rebuild the selection
    # so that equal values at the boundary keep the lowest database indices.
    boundary = values[partition].max()
    below = np.flatnonzero(values < boundary)
    needed = p - below.size
    chosen = np.concatenate([below, np.flatnonzero(values == boundary)[:needed]])
    order = np.argsort(values[chosen], kind="stable")
    return chosen[order]


@dataclass
class RetrievalResult:
    """Outcome of one filter-and-refine query.

    Attributes
    ----------
    neighbor_indices:
        Database indices of the ``k`` reported neighbors, best first.
    neighbor_distances:
        Their exact distances to the query.
    candidate_indices:
        The ``p`` database indices that survived the filter step, in filter
        order.
    embedding_distance_computations:
        Exact distances spent embedding the query.
    refine_distance_computations:
        Exact distances spent in the refine step (= ``p``).
    """

    neighbor_indices: np.ndarray
    neighbor_distances: np.ndarray
    candidate_indices: np.ndarray
    embedding_distance_computations: int
    refine_distance_computations: int

    @property
    def total_distance_computations(self) -> int:
        """The paper's cost metric: embedding cost plus refine cost."""
        return self.embedding_distance_computations + self.refine_distance_computations


class FilterRefineRetriever:
    """Approximate k-NN retrieval through an embedding.

    Parameters
    ----------
    distance:
        The exact distance measure (used for the refine step and, through
        the embedding, for the embedding step).
    database:
        The database to search.
    embedder:
        Either a trained :class:`~repro.core.model.QuerySensitiveModel`
        (filter distances are then the query-sensitive ``D_out``) or any
        :class:`~repro.embeddings.base.Embedding` (filter distances are plain
        L1, the choice of the original BoostMap and FastMap baselines).
    database_vectors:
        Optional precomputed ``(n, d)`` matrix of database embeddings.  When
        omitted, the whole database is embedded at construction time (a
        one-time preprocessing cost, not charged to queries).
    """

    def __init__(
        self,
        distance: DistanceMeasure,
        database: Dataset,
        embedder: Union[QuerySensitiveModel, Embedding],
        database_vectors: Optional[np.ndarray] = None,
    ) -> None:
        if not isinstance(distance, DistanceMeasure):
            raise RetrievalError("distance must be a DistanceMeasure instance")
        if not isinstance(database, Dataset):
            raise RetrievalError("database must be a Dataset")
        if not isinstance(embedder, (QuerySensitiveModel, Embedding)):
            raise RetrievalError(
                "embedder must be a QuerySensitiveModel or an Embedding"
            )
        self.database = database
        self.embedder = embedder
        self._refine_distance = CountingDistance(distance)
        if database_vectors is None:
            database_vectors = embedder.embed_many(list(database))
        self.database_vectors = np.asarray(database_vectors, dtype=float)
        if self.database_vectors.shape != (len(database), self.dim):
            raise RetrievalError(
                f"database_vectors must have shape ({len(database)}, {self.dim}), "
                f"got {self.database_vectors.shape}"
            )

    @property
    def dim(self) -> int:
        """Dimensionality of the embedding used for filtering."""
        return self.embedder.dim

    @property
    def embedding_cost(self) -> int:
        """Exact distances needed to embed one query."""
        return self.embedder.cost

    def filter_distances(self, query_vector: np.ndarray) -> np.ndarray:
        """Vector distances from an embedded query to every database vector."""
        query_vector = np.asarray(query_vector, dtype=float)
        if isinstance(self.embedder, QuerySensitiveModel):
            return self.embedder.distances_to(query_vector, self.database_vectors)
        return np.abs(self.database_vectors - query_vector[None, :]).sum(axis=1)

    def filter_order(self, query_vector: np.ndarray, p: Optional[int] = None) -> np.ndarray:
        """Database indices sorted by increasing filter distance.

        With ``p`` given, only the ``p`` best candidates are returned: the
        cut uses :func:`np.argpartition` (O(n) selection) and only those
        ``p`` survivors are sorted, instead of a full O(n log n) stable sort
        over the whole database.  The result is identical — including tie
        breaking by database index — to ``filter_order(...)[:p]``.
        """
        return _stable_smallest(self.filter_distances(query_vector), p)

    def _refine(self, obj: Any, candidates: np.ndarray, k: int, p: int) -> RetrievalResult:
        """Refine filter candidates with one batched exact-distance call."""
        candidate_objects = [self.database[int(i)] for i in candidates]
        exact = np.asarray(
            self._refine_distance.compute_many(obj, candidate_objects), dtype=float
        )
        order = np.argsort(exact, kind="stable")[:k]
        return RetrievalResult(
            neighbor_indices=candidates[order],
            neighbor_distances=exact[order],
            candidate_indices=candidates,
            embedding_distance_computations=self.embedding_cost,
            refine_distance_computations=int(p),
        )

    def _check_query_params(self, k: int, p: int) -> None:
        if not 1 <= k <= len(self.database):
            raise RetrievalError(f"k must be in [1, {len(self.database)}], got {k}")
        if not k <= p <= len(self.database):
            raise RetrievalError(
                f"p must be in [{k}, {len(self.database)}], got {p}"
            )

    def query(self, obj: Any, k: int, p: int) -> RetrievalResult:
        """Retrieve the approximate ``k`` nearest neighbors of ``obj``.

        The refine step evaluates all ``p`` exact distances in one batched
        ``compute_many`` call (the counting wrapper charges exactly ``p``
        evaluations, as in the scalar path).

        Parameters
        ----------
        obj:
            The query object (in the original space).
        k:
            Number of neighbors to return.
        p:
            Number of filter candidates to refine with exact distances
            (``k <= p <= len(database)``).
        """
        self._check_query_params(k, p)
        query_vector = self.embedder.embed(obj)
        candidates = self.filter_order(query_vector, p)
        return self._refine(obj, candidates, k, p)

    def query_many(self, objects: Sequence[Any], k: int, p: int):
        """Batched :meth:`query` over a sequence of query objects.

        All queries are embedded with one (batched) ``embed_many`` call, then
        each query's candidates are refined with one batched exact-distance
        call.  Results are identical to ``[self.query(obj, k, p) for obj in
        objects]``, including per-query cost accounting.
        """
        self._check_query_params(k, p)
        objects = list(objects)
        if not objects:
            return []
        query_vectors = self.embedder.embed_many(objects)
        results = []
        for obj, query_vector in zip(objects, query_vectors):
            candidates = self.filter_order(query_vector, p)
            results.append(self._refine(obj, candidates, k, p))
        return results
