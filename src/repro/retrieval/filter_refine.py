"""Filter-and-refine retrieval (Sec. 8 of the paper).

Given a query ``q``:

1. **Embedding step** — compute ``F(q)`` by measuring the exact distances
   from ``q`` to the embedding's reference/pivot objects (cost =
   ``embedding.cost`` exact distances).
2. **Filter step** — rank the precomputed database vectors by a cheap vector
   distance.  For a query-sensitive model that distance is ``D_out`` with the
   per-query weights ``A_i(q)``; for plain embeddings it is an (optionally
   weighted) L1 distance.  This step touches no exact distances.
3. **Refine step** — evaluate the exact distance between ``q`` and the top
   ``p`` filter candidates and return the best ``k`` (cost = ``p`` exact
   distances).

Total cost per query: ``embedding.cost + p`` exact distance computations —
the quantity every figure and table of the paper reports.

Since the :mod:`repro.retrieval.engine` refactor the pipeline itself lives
in :class:`~repro.retrieval.engine.QueryEngine` as explicit stages
(:class:`~repro.retrieval.engine.EmbedStage` →
:class:`~repro.retrieval.engine.FilterStage` →
:class:`~repro.retrieval.engine.RefineStage` →
:class:`~repro.retrieval.engine.MergeStage`);
:class:`FilterRefineRetriever` is the unsharded configuration of that
engine.  See the engine module for the batching, tie-breaking, parameter
clamping, parallelism and shared-store rules — they are identical for
every retriever because they are the *same code*:

* ``k``/``p`` clamping: ``p`` is raised to at least ``k`` and both are
  capped at the database size, so every query returns exactly
  ``min(k, n)`` neighbors; with ``p`` clamped to ``n`` the results equal
  brute force, tie order included.
* Tie-breaking: filter cut and refine both resolve distance ties by the
  smallest database index — the stable brute-force scan order, which is
  what lets :class:`~repro.retrieval.sharded.ShardedRetriever` merge
  per-shard candidates into bit-identical global results.
* ``n_jobs``: queries are embedded and filtered in the parent process and
  the refine work fans out over worker processes
  (:func:`repro.distances.parallel.parallel_refine`), with parent-side
  :class:`~repro.distances.base.CountingDistance` wrappers charged exactly
  as in the serial path and identity-keyed caches rejected.
* Shared store: built on a
  :class:`~repro.distances.context.DistanceContext` (whose universe must
  contain the database), refine evaluations charge against the context's
  store — cached pairs are free and
  ``RetrievalResult.refine_distance_computations`` reports the evaluations
  actually performed (``0`` for a fully warm store).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Union

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.datasets.base import Dataset
from repro.distances.base import CountingDistance, DistanceMeasure
from repro.embeddings.base import Embedding
from repro.exceptions import RetrievalError
from repro.retrieval.engine import (
    QueryEngine,
    RetrievalResult,
    build_retrieval_result,
    clamp_query_params,
    filter_vector_distances,
    refine_order,
    stable_smallest,
)
from repro.retrieval.quantized import QuantizedVectors

__all__ = ["FilterRefineRetriever", "RetrievalResult"]

# Backwards-compatible aliases: these helpers started life as this module's
# private functions and are imported elsewhere under their old names.
_stable_smallest = stable_smallest
_clamp_query_params = clamp_query_params
_filter_distances = filter_vector_distances
_refine_order = refine_order
_build_retrieval_result = build_retrieval_result


class FilterRefineRetriever:
    """Approximate k-NN retrieval through an embedding.

    A thin configuration of :class:`~repro.retrieval.engine.QueryEngine`
    (embed → filter → refine → merge over the whole database).

    Parameters
    ----------
    distance:
        The exact distance measure (used for the refine step and, through
        the embedding, for the embedding step).  Passing a
        :class:`~repro.distances.context.DistanceContext` whose universe
        contains the database makes refine evaluations go through its
        shared store — cached pairs are free (see the module docstring).
    database:
        The database to search.
    embedder:
        Either a trained :class:`~repro.core.model.QuerySensitiveModel`
        (filter distances are then the query-sensitive ``D_out``) or any
        :class:`~repro.embeddings.base.Embedding` (filter distances are plain
        L1, the choice of the original BoostMap and FastMap baselines).
    database_vectors:
        Optional precomputed ``(n, d)`` matrix of database embeddings.  When
        omitted, the whole database is embedded at construction time (a
        one-time preprocessing cost, not charged to queries).
    quantized:
        Optional :class:`~repro.retrieval.quantized.QuantizedVectors` copy
        of the embedded database.  The filter scan then reads the
        low-precision table and re-scores only an error-bounded candidate
        superset with the exact float64 rows — results, tie order and
        per-query exact-distance counts stay bit-identical to the float64
        scan, and the superset size is charged in
        :attr:`filter_widened_total`.
    """

    def __init__(
        self,
        distance: DistanceMeasure,
        database: Dataset,
        embedder: Union[QuerySensitiveModel, Embedding],
        database_vectors: Optional[np.ndarray] = None,
        quantized: Optional["QuantizedVectors"] = None,
    ) -> None:
        if not isinstance(distance, DistanceMeasure):
            raise RetrievalError("distance must be a DistanceMeasure instance")
        if not isinstance(database, Dataset):
            raise RetrievalError("database must be a Dataset")
        if not isinstance(embedder, (QuerySensitiveModel, Embedding)):
            raise RetrievalError(
                "embedder must be a QuerySensitiveModel or an Embedding"
            )
        self.database = database
        self.embedder = embedder
        if database_vectors is None:
            database_vectors = embedder.embed_many(list(database))
        self.database_vectors = np.asarray(database_vectors, dtype=float)
        if self.database_vectors.shape != (len(database), self.dim):
            raise RetrievalError(
                f"database_vectors must have shape ({len(database)}, {self.dim}), "
                f"got {self.database_vectors.shape}"
            )
        self.engine = QueryEngine.filter_refine(
            distance, database, embedder, self.database_vectors, quantized=quantized
        )

    @property
    def dim(self) -> int:
        """Dimensionality of the embedding used for filtering."""
        return self.embedder.dim

    @property
    def quantized(self) -> Optional["QuantizedVectors"]:
        """The quantized filter table, when one is bound (else ``None``)."""
        return self.engine.filter.quantized

    @property
    def filter_widened_queries(self) -> int:
        """Queries answered through the quantized filter scan so far."""
        return self.engine.filter.widened_queries

    @property
    def filter_widened_total(self) -> int:
        """Total widened candidate count ``sum of p'`` across those queries.

        The exact float64 filter rows evaluated to absorb quantization
        error (``p' >= p`` per query); ``0`` without a quantized table.
        """
        return self.engine.filter.widened_total

    @property
    def embedding_cost(self) -> int:
        """Exact distances needed to embed one query."""
        return self.embedder.cost

    @property
    def _binding(self):
        return self.engine.refine.binding

    @property
    def _refine_distance(self) -> Optional[CountingDistance]:
        return self.engine.refine.counting

    @property
    def refine_distance_evaluations(self) -> int:
        """Total exact distances spent refining, across all queries so far.

        For a context-backed retriever this counts the evaluations actually
        performed (store hits are free).
        """
        return self.engine.refine.calls

    def filter_distances(self, query_vector: np.ndarray) -> np.ndarray:
        """Vector distances from an embedded query to every database vector."""
        return self.engine.filter.distances(query_vector)

    def filter_order(self, query_vector: np.ndarray, p: Optional[int] = None) -> np.ndarray:
        """Database indices sorted by increasing filter distance.

        With ``p`` given, only the ``p`` best candidates are returned: the
        cut uses :func:`np.argpartition` (O(n) selection) and only those
        ``p`` survivors are sorted, instead of a full O(n log n) stable sort
        over the whole database.  The result is identical — including tie
        breaking by database index — to ``filter_order(...)[:p]``.
        """
        return self.engine.filter.order(query_vector, p)

    def query(self, obj: Any, k: int, p: int) -> RetrievalResult:
        """Retrieve the approximate ``k`` nearest neighbors of ``obj``.

        The refine step evaluates all ``p`` exact distances in one batched
        ``compute_many`` call (the counting wrapper charges exactly ``p``
        evaluations, as in the scalar path).

        Parameters
        ----------
        obj:
            The query object (in the original space).
        k:
            Number of neighbors to return; clamped to the database size, so
            exactly ``min(k, n)`` neighbors come back.
        p:
            Number of filter candidates to refine with exact distances;
            clamped to ``[min(k, n), n]`` (see the module docstring).
        """
        return self.engine.query(obj, k, p)

    def query_many(
        self,
        objects: Sequence[Any],
        k: int,
        p: int,
        n_jobs: Optional[int] = None,
    ) -> List[RetrievalResult]:
        """Batched :meth:`query` over a sequence of query objects.

        All queries are embedded with one (batched) ``embed_many`` call, then
        each query's candidates are refined with one batched exact-distance
        call.  Results are identical to ``[self.query(obj, k, p) for obj in
        objects]``, including per-query cost accounting.

        With ``n_jobs > 1`` (or ``-1`` for all CPUs) the refine work is
        spread over a process pool; embedding and filtering stay in the
        parent, results and counter charges are bit-identical to the serial
        path, and the distance measure plus the database objects must be
        picklable.
        """
        return self.engine.query_many(objects, k, p, n_jobs=n_jobs)
