"""Exact k-nearest-neighbor ground truth.

Every experiment needs, for each query, the identities of its true ``k``
nearest database neighbors under the exact distance measure.  Computing that
ground truth costs ``|database|`` exact distances per query — the brute-force
cost the paper's Table 1 compares against (60,000 for MNIST, 31,818 for the
time series database).

Passing a :class:`~repro.distances.context.DistanceContext` built over the
database *and* the queries as the distance measure turns this scan into a
store warm-up: the full query-by-database matrix is computed through (and
recorded in) the shared store, so a persisted store makes subsequent runs —
and every later refine of a (query, database) pair — free.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.datasets.base import Dataset
from repro.distances.base import DistanceMeasure
from repro.distances.matrix import cross_distances
from repro.exceptions import RetrievalError


@dataclass
class NeighborTable:
    """Ground-truth nearest neighbors for a set of queries.

    Attributes
    ----------
    indices:
        ``(n_queries, k_max)`` array; row ``i`` lists the database indices of
        the ``k_max`` nearest neighbors of query ``i``, nearest first.
    distances:
        The corresponding exact distances.
    """

    indices: np.ndarray
    distances: np.ndarray

    def __post_init__(self) -> None:
        self.indices = np.asarray(self.indices, dtype=int)
        self.distances = np.asarray(self.distances, dtype=float)
        if self.indices.shape != self.distances.shape:
            raise RetrievalError("indices and distances must have the same shape")
        if self.indices.ndim != 2:
            raise RetrievalError("a NeighborTable must be two-dimensional")

    @property
    def n_queries(self) -> int:
        """Number of queries the table covers (its row count)."""
        return int(self.indices.shape[0])

    @property
    def k_max(self) -> int:
        """Largest ``k`` the table answers (its column count)."""
        return int(self.indices.shape[1])

    def neighbors(self, query_index: int, k: int) -> np.ndarray:
        """The ``k`` nearest database indices of one query."""
        if not 1 <= k <= self.k_max:
            raise RetrievalError(f"k must be in [1, {self.k_max}], got {k}")
        return self.indices[query_index, :k]


def knn_from_distances(distance_matrix: np.ndarray, k: int) -> NeighborTable:
    """Build a :class:`NeighborTable` from a query-by-database distance matrix."""
    matrix = np.asarray(distance_matrix, dtype=float)
    if matrix.ndim != 2:
        raise RetrievalError("distance_matrix must be 2D (queries x database)")
    if not 1 <= k <= matrix.shape[1]:
        raise RetrievalError(f"k must be in [1, {matrix.shape[1]}], got {k}")
    order = np.argsort(matrix, axis=1, kind="stable")[:, :k]
    rows = np.arange(matrix.shape[0])[:, None]
    return NeighborTable(indices=order, distances=matrix[rows, order])


def ground_truth_neighbors(
    distance: DistanceMeasure,
    database: Dataset,
    queries: Dataset,
    k_max: int,
    return_matrix: bool = False,
    n_jobs: Optional[int] = None,
):
    """Compute exact nearest neighbors of every query by brute force.

    Parameters
    ----------
    distance:
        The exact distance measure.
    database, queries:
        The database and query datasets.
    k_max:
        How many neighbors to keep per query.
    return_matrix:
        If ``True``, also return the full query-by-database distance matrix
        (useful when the experiment later needs exact distances to arbitrary
        database objects, e.g. for refine-step simulation).
    n_jobs:
        Worker processes for the brute-force matrix build (forwarded to
        :func:`repro.distances.matrix.cross_distances`); ``None``/``1`` =
        serial, ``-1`` = all CPUs.

    Returns
    -------
    NeighborTable or (NeighborTable, numpy.ndarray)
    """
    if k_max < 1 or k_max > len(database):
        raise RetrievalError(
            f"k_max must be in [1, {len(database)}], got {k_max}"
        )
    matrix = cross_distances(distance, list(queries), list(database), n_jobs=n_jobs)
    table = knn_from_distances(matrix, k_max)
    if return_matrix:
        return table, matrix
    return table
