"""Cost-based adaptive query planning: per-query ``p``, backend and fan-out.

The paper's filter-and-refine operating point — the filter size ``p`` behind
the Figure 4/5 accuracy-vs-cost curves — is a single knob tuned offline.
This module turns it into a per-query decision made by a fitted cost model,
the way a database optimizer chooses a physical plan:

* :class:`CostModel` — fitted online from *observed* stage timings: exact
  evaluations per second, filter scan seconds per row (per tier), the store
  hit rate (globally and per shard), and the remote round-trip overhead.
  Calibrated from a few probe queries
  (:meth:`PlannedRetriever.calibrate`) and updated from every served
  batch.  All ``observe_*`` methods ingest values measured by the caller;
  every ``choose_*``/``predict_*`` method is a pure function of the fitted
  state — no clocks, no RNG (analysis rule RP012), so planning decisions
  are deterministic given the model.
* :class:`PlannedRetriever` — the ``"planned"`` index backend.  Per query
  it (a) picks ``p`` to hit a target accuracy or cost budget, (b) chooses
  the filter tier (float64/quantized) and execution backend (flat,
  sharded, remote scatter/gather, full scan for tiny residuals) from
  predicted cost, (c) sets ``n_jobs`` from pool occupancy, and (d) shrinks
  the refine set adaptively: candidates are refined in prefix-extending
  slices and refinement stops as soon as the top-``k`` is stable across an
  extension (the incremental-refine early exit), charging only the pairs
  actually evaluated.

Exactness contract
------------------
With an explicit ``p`` (or ``planner="off"``) the planned backend delegates
to the shared :class:`~repro.retrieval.engine.QueryEngine` pipeline and is
bit-identical to today's paths.  In adaptive mode, the chosen per-query
``p'`` is *defined* as the refined prefix length at the deterministic
stopping point; because a stable filter cut at ``p'`` is exactly the first
``p'`` entries of the cut at the ceiling ``p_max`` (stable top-``p`` cuts
are prefix-closed), the adaptive result — neighbors, tie order, candidate
list and per-query accounting — is bit-identical *by construction* to the
fixed-``p'`` run over the same store state.  Tests assert this for the
flat, sharded and remote backends.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.datasets.base import Dataset
from repro.exceptions import RetrievalError
from repro.retrieval.engine import (
    FilterStage,
    QueryEngine,
    RetrievalResult,
    build_retrieval_result,
    clamp_query_params,
    refine_order,
)
from repro.retrieval.evaluation import (
    FilterRankResult,
    cost_for_accuracy,
    filter_ranks,
)
from repro.retrieval.knn import knn_from_distances
from repro.retrieval.quantized import QuantizedVectors
from repro.retrieval.sharded import ShardedRetriever

__all__ = [
    "CostModel",
    "PlannedRetriever",
    "choose_operating_point",
    "refine_schedule",
]


#: Default neighbor-table width of the calibration profile: accuracy-targeted
#: ``p`` selection supports any ``k`` up to this without re-probing.
CALIBRATION_KMAX = 8

#: Uncalibrated fallback ceiling: ``max(DEFAULT_P_FACTOR * k, DEFAULT_P_MIN)``
#: candidates, clamped to the database size.
DEFAULT_P_FACTOR = 8
DEFAULT_P_MIN = 32

#: Store hit rate above which the sharded execution path (store-aware
#: per-shard refine grouping) is predicted to pay for its routing overhead.
SHARDED_HIT_RATE = 0.25

#: Minimum predicted refine misses per pool worker before parallel fan-out
#: is predicted to beat the serial path (dispatch overhead amortization).
MIN_MISSES_PER_WORKER = 8


def refine_schedule(p_ceiling: int, k: int) -> List[int]:
    """The deterministic prefix-extension schedule of the adaptive refine.

    Starts at ``max(k, ceil(p_ceiling / 4))`` and doubles until the ceiling:
    the early exit needs two consecutive prefixes agreeing on the
    top-``k``, so the cheapest possible stop costs half the ceiling.  Pure
    arithmetic — the schedule (and therefore the chosen ``p'``) depends
    only on ``(p_ceiling, k)`` and the refined distances, never on timing.
    """
    if p_ceiling < 1:
        raise RetrievalError(f"p_ceiling must be positive, got {p_ceiling}")
    sizes: List[int] = []
    current = min(p_ceiling, max(int(k), (int(p_ceiling) + 3) // 4, 1))
    while True:
        sizes.append(current)
        if current >= p_ceiling:
            return sizes
        current = min(current * 2, p_ceiling)


def choose_operating_point(
    k: int,
    n_database: int,
    embedding_cost: int,
    rank_profile: Optional[FilterRankResult],
    target_accuracy: float,
    cost_budget: Optional[int],
) -> int:
    """Pick the refine ceiling ``p`` for one query — the planner's operating point.

    Pure (RP012): a function of the calibration profile and the configured
    targets only.  With a profile, ``p`` is the paper's accuracy quantile
    (:func:`~repro.retrieval.evaluation.cost_for_accuracy`); without one, a
    deterministic ``max(8k, 32)`` fallback.  A ``cost_budget`` (total exact
    evaluations per query, embedding included) caps it; when the capped
    operating point costs as much as a brute-force scan anyway, the residual
    is tiny and the planner refines everything (``p = n``), which is
    bit-identical to the exact scan.  The experiments layer shares this
    function to overlay planner-chosen operating points on the Figure 4/5
    curves.
    """
    if n_database < 1:
        raise RetrievalError("n_database must be positive")
    if rank_profile is not None:
        point = cost_for_accuracy(
            rank_profile,
            min(int(k), rank_profile.k_max),
            target_accuracy,
            n_database,
        )
        p = point.p
    else:
        p = max(DEFAULT_P_FACTOR * int(k), DEFAULT_P_MIN)
    if cost_budget is not None:
        p = min(p, int(cost_budget) - int(embedding_cost))
    p = min(max(p, int(k), 1), n_database)
    if int(embedding_cost) + p >= n_database:
        # Tiny residual: the filter step cannot pay for itself, so the
        # cheapest *correct* plan refines the whole database.
        p = n_database
    return int(p)


class CostModel:
    """Per-stage cost coefficients, fitted online from observed timings.

    The split between measurement and decision is strict: ``observe_*``
    methods ingest wall-clock values their *caller* measured (they never
    read clocks themselves), and ``choose_*``/``predict_*`` methods are
    pure functions of the fitted state — analysis rule RP012 enforces that
    they call no clocks and no RNG, extending the RP004 bit-identity story
    to planning: the same model state always produces the same plan.

    Fitted quantities (exponentially-weighted moving averages):

    * ``exact_eval_seconds`` — seconds per exact refine evaluation (the
      active kernel backend's throughput shows up here);
    * ``embed_seconds`` — seconds to embed one query;
    * ``filter_row_seconds`` — filter scan seconds per database row, keyed
      by tier (``"float64"`` or the quantized dtype);
    * ``store_hit_rate`` — fraction of routed refine pairs absorbed by the
      distance store (and ``shard_hit_rates``, the same per shard);
    * ``remote_round_trip_seconds`` — scatter/gather seconds per query.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise RetrievalError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self.observations = 0
        self.exact_eval_seconds = 0.0
        self.embed_seconds = 0.0
        self.filter_row_seconds: Dict[str, float] = {}
        self.store_hit_rate = 0.0
        self.shard_hit_rates: Dict[int, float] = {}
        self.remote_round_trip_seconds = 0.0
        #: Calibration record of the last :meth:`PlannedRetriever.calibrate`
        #: run (probe cost, fit seconds), ``None`` until calibrated.
        self.calibration: Optional[Dict[str, Any]] = None

    # -- fitting (values measured by the caller; no clocks here) ---------

    def _blend(self, old: float, new: float) -> float:
        """EWMA update; the first observation replaces the zero prior."""
        if old == 0.0:
            return float(new)
        return float(old + self.alpha * (new - old))

    def observe_batch(
        self,
        *,
        n_queries: int,
        n_rows: int,
        tier: str,
        embed_seconds: float,
        filter_seconds: float,
        refine_seconds: float,
        refine_evaluations: int,
        refine_pairs: int,
    ) -> None:
        """Fold one served batch's measured stage costs into the model.

        ``n_rows`` is the total filter rows scanned (database size times
        queries), ``refine_pairs`` the candidate pairs routed to refine,
        ``refine_evaluations`` how many of those the store did not absorb.
        """
        if n_queries <= 0:
            return
        if embed_seconds > 0.0:
            self.embed_seconds = self._blend(
                self.embed_seconds, embed_seconds / n_queries
            )
        if n_rows > 0 and filter_seconds > 0.0:
            self.filter_row_seconds[tier] = self._blend(
                self.filter_row_seconds.get(tier, 0.0), filter_seconds / n_rows
            )
        if refine_evaluations > 0 and refine_seconds > 0.0:
            self.exact_eval_seconds = self._blend(
                self.exact_eval_seconds, refine_seconds / refine_evaluations
            )
        if refine_pairs > 0:
            hit_rate = 1.0 - refine_evaluations / refine_pairs
            self.store_hit_rate = self._blend(self.store_hit_rate, hit_rate)
        self.observations += 1

    def observe_shards(self, signals: Sequence[Dict[str, Any]]) -> None:
        """Fold per-shard routing signals (``shard_cost_signals()``) in."""
        for signal in signals:
            routed = int(signal.get("routed_pairs", 0))
            if routed <= 0:
                continue
            hit_rate = 1.0 - int(signal.get("evaluations", 0)) / routed
            sid = int(signal["shard"])
            self.shard_hit_rates[sid] = self._blend(
                self.shard_hit_rates.get(sid, 0.0), hit_rate
            )

    def observe_remote(self, seconds_per_query: float) -> None:
        """Fold a measured remote scatter/gather cost (seconds/query) in."""
        if seconds_per_query > 0.0:
            self.remote_round_trip_seconds = self._blend(
                self.remote_round_trip_seconds, seconds_per_query
            )

    # -- prediction and choice (pure over fitted state; RP012) -----------

    def predict_filter_seconds(self, n_rows: int, tier: str) -> float:
        """Predicted scan seconds for ``n_rows`` filter rows on one tier."""
        return n_rows * self.filter_row_seconds.get(tier, 0.0)

    def predict_refine_seconds(self, n_candidates: int) -> float:
        """Predicted refine seconds: store-miss fraction times eval cost."""
        misses = (1.0 - self.store_hit_rate) * n_candidates
        return misses * self.exact_eval_seconds

    def predict_query_seconds(self, p: int, n_rows: int, tier: str) -> float:
        """Predicted wall-clock of one local filter-and-refine query."""
        return (
            self.embed_seconds
            + self.predict_filter_seconds(n_rows, tier)
            + self.predict_refine_seconds(p)
        )

    def choose_filter_tier(self, tiers: Sequence[str]) -> str:
        """Pick the cheapest filter tier by fitted per-row scan cost.

        ``tiers`` lists the available tiers in preference order (the
        configured quantized tier first); an unfitted tier keeps its
        place — the planner only overrides the configuration once it has
        measured both tiers and found the preferred one slower.
        """
        tiers = list(tiers)
        if not tiers:
            raise RetrievalError("choose_filter_tier needs at least one tier")
        best = tiers[0]
        for tier in tiers[1:]:
            best_cost = self.filter_row_seconds.get(best)
            cost = self.filter_row_seconds.get(tier)
            if best_cost is not None and cost is not None and cost < best_cost:
                best = tier
        return best

    def choose_n_jobs(
        self, n_queries: int, p: int, pool_workers: int
    ) -> Optional[int]:
        """Refine fan-out from pool occupancy and predicted store misses.

        Returns ``None`` (the serial path) when the pool is absent, closed
        or too small, or when the predicted miss volume would not amortize
        dispatch — a dead pool therefore re-plans onto the serial path
        automatically.
        """
        if pool_workers <= 1:
            return None
        misses = (1.0 - self.store_hit_rate) * p * n_queries
        if misses < MIN_MISSES_PER_WORKER * pool_workers:
            return None
        return int(pool_workers)

    def choose_backend(
        self,
        p: int,
        n_rows: int,
        tier: str,
        sharded_available: bool,
        remote_available: bool,
    ) -> str:
        """Pick the execution backend for one query from predicted cost.

        Remote scatter/gather wins when its fitted round-trip cost
        undercuts the predicted local query; otherwise the sharded
        store-aware path wins once the store is warm enough
        (hit rate ≥ ``SHARDED_HIT_RATE``) for per-shard grouping to pay;
        otherwise flat.  Every choice is bit-identical — this only decides
        *where* the same work runs.
        """
        if remote_available:
            local = self.predict_query_seconds(p, n_rows, tier)
            if self.remote_round_trip_seconds <= local:
                return "remote_sharded"
        if sharded_available and self.store_hit_rate >= SHARDED_HIT_RATE:
            return "sharded"
        return "flat"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly snapshot of the fitted state (health / explain)."""
        return {
            "observations": self.observations,
            "exact_eval_seconds": self.exact_eval_seconds,
            "embed_seconds": self.embed_seconds,
            "filter_row_seconds": dict(self.filter_row_seconds),
            "store_hit_rate": self.store_hit_rate,
            "shard_hit_rates": {
                int(k): float(v) for k, v in self.shard_hit_rates.items()
            },
            "remote_round_trip_seconds": self.remote_round_trip_seconds,
            "calibrated": self.calibration is not None,
        }


class PlannedRetriever:
    """The ``"planned"`` backend: cost-planned filter-and-refine retrieval.

    Wraps the shared :class:`~repro.retrieval.engine.QueryEngine` pipeline
    behind a :class:`CostModel`.  With an explicit ``p`` (or
    ``mode="off"``) every call delegates to the flat engine and is
    bit-identical to :class:`~repro.retrieval.filter_refine.FilterRefineRetriever`;
    with ``p=None`` in ``mode="adaptive"`` the planner picks the operating
    point per query and refines incrementally (see the module docstring
    for the exactness contract).

    Parameters
    ----------
    distance, database, embedder, database_vectors, quantized:
        As for :class:`~repro.retrieval.filter_refine.FilterRefineRetriever`.
    n_shards:
        When > 1, a sharded execution path is kept available and chosen by
        predicted cost once the store is warm.
    n_jobs:
        Default refine fan-out for explicit-``p`` batches when the caller
        does not pass one and the planner declines to choose.
    mode:
        ``"off"`` (explicit ``p`` required, pure pass-through) or
        ``"adaptive"``.
    target_accuracy:
        Accuracy target for the calibrated ``p`` choice, in (0, 1].
    cost_budget:
        Optional per-query budget in exact evaluations (embedding
        included) capping the chosen operating point.
    """

    def __init__(
        self,
        distance: Any,
        database: Dataset,
        embedder: Any,
        database_vectors: Optional[np.ndarray] = None,
        n_shards: int = 1,
        n_jobs: Optional[int] = None,
        quantized: Optional[QuantizedVectors] = None,
        mode: str = "off",
        target_accuracy: float = 0.95,
        cost_budget: Optional[int] = None,
    ) -> None:
        if mode not in ("off", "adaptive"):
            raise RetrievalError(
                f"planner mode must be 'off' or 'adaptive', got {mode!r}"
            )
        if not 0.0 < float(target_accuracy) <= 1.0:
            raise RetrievalError(
                f"target_accuracy must be in (0, 1], got {target_accuracy}"
            )
        if cost_budget is not None and int(cost_budget) < 1:
            raise RetrievalError("cost_budget must be a positive evaluation count")
        self.distance = distance
        self.database = database
        self.embedder = embedder
        if database_vectors is None:
            database_vectors = embedder.embed_many(list(database))
        self.database_vectors = np.asarray(database_vectors, dtype=float)
        self.engine = QueryEngine.filter_refine(
            distance, database, embedder, self.database_vectors, quantized=quantized
        )
        # The exact-scan filter stage backs the float64 tier when the
        # engine's stage is quantized (same vectors, so cuts are prefixes
        # of the same stable order either way).
        self._exact_filter = (
            self.engine.filter
            if quantized is None
            else FilterStage(embedder, self.database_vectors)
        )
        self._sharded: Optional[ShardedRetriever] = None
        if int(n_shards) > 1:
            self._sharded = ShardedRetriever(
                distance,
                database,
                embedder,
                n_shards=int(n_shards),
                database_vectors=self.database_vectors,
                n_jobs=n_jobs,
                quantized=quantized,
            )
        #: Optional remote scatter/gather delegate (see :meth:`attach_remote`).
        self.remote: Optional[Any] = None
        self.mode = mode
        self.target_accuracy = float(target_accuracy)
        self.cost_budget = None if cost_budget is None else int(cost_budget)
        self.n_jobs = n_jobs
        self.model = CostModel()
        #: Accuracy profile fitted by :meth:`calibrate` (``None`` = the
        #: deterministic uncalibrated fallback ceiling is used).
        self.rank_profile: Optional[FilterRankResult] = None
        self.planned_queries = 0
        self.early_exits = 0
        self._last_decision: Optional[Dict[str, Any]] = None

    # -- introspection ---------------------------------------------------

    @property
    def supports_adaptive_p(self) -> bool:
        """Whether ``p=None`` is served adaptively (``mode="adaptive"``)."""
        return self.mode == "adaptive"

    @property
    def dim(self) -> int:
        """Dimensionality of the filter embedding."""
        return self.engine.embed.dim

    @property
    def embedding_cost(self) -> int:
        """Exact evaluations one query embedding costs."""
        return self.engine.embed.cost

    @property
    def refine_distance_evaluations(self) -> int:
        """Exact evaluations performed by the flat refine stage so far."""
        return self.engine.refine.calls

    def attach_remote(self, backend: Any) -> None:
        """Make a remote scatter/gather backend available to the planner.

        ``backend`` is a :class:`repro.remote.client.RemoteShardedBackend`
        (or anything with the same ``query_many``/``health`` surface).  The
        planner routes whole fixed-``p'`` queries to it when the fitted
        round-trip cost undercuts the predicted local run, and re-plans
        onto the local path as soon as its health reports degradation.
        """
        self.remote = backend

    # -- pure decision functions (RP012: no clocks, no RNG) --------------

    def choose_p(self, k: int) -> int:
        """The planner's refine ceiling for one query at ``k``.

        Pure over the calibration profile and configured targets (see
        :func:`choose_operating_point`); the async serving layer calls
        this to resolve ``p=None`` submissions.
        """
        if k < 1:
            raise RetrievalError(f"k must be a positive integer, got {k}")
        return choose_operating_point(
            k=k,
            n_database=self.engine.n_database,
            embedding_cost=self.engine.embed.cost,
            rank_profile=self.rank_profile,
            target_accuracy=self.target_accuracy,
            cost_budget=self.cost_budget,
        )

    def choose_tier(self) -> str:
        """The filter tier the planner scans with (``"float64"`` or quantized)."""
        quantized = self.engine.filter.quantized
        if quantized is None:
            return "float64"
        return self.model.choose_filter_tier([quantized.dtype, "float64"])

    # -- measurement helpers (read live state; never used in choosers) ---

    def _pool_workers(self) -> int:
        """Width of the live worker pool (0 = absent or closed)."""
        pool = getattr(self.distance, "pool", None)
        if pool is None or getattr(pool, "closed", False):
            return 0
        return int(getattr(pool, "n_workers", 0))

    def _remote_degraded(self) -> bool:
        """Whether the attached remote backend currently reports degradation."""
        if self.remote is None:
            return True
        try:
            return bool(self.remote.health().get("degraded"))
        except Exception:  # repro-lint: disable=RP003 -- supervision probe: a health check that raises IS the degraded signal; the planner re-plans locally instead of propagating
            return True

    def _observe_stats(self, stats: Optional[Dict[str, Any]], tier: str) -> None:
        """Fold an engine batch's ``plan.stats`` into the cost model."""
        if not stats:
            return
        seconds = stats.get("stage_seconds", {})
        self.model.observe_batch(
            n_queries=int(stats.get("n_queries", 0)),
            n_rows=self.engine.n_database * int(stats.get("n_queries", 0)),
            tier=tier,
            embed_seconds=float(seconds.get("embed", 0.0)),
            filter_seconds=float(seconds.get("filter", 0.0)),
            refine_seconds=float(seconds.get("refine", 0.0)),
            refine_evaluations=int(stats.get("refine_evaluations", 0)),
            refine_pairs=int(stats.get("candidates", 0)),
        )

    # -- calibration -----------------------------------------------------

    def calibrate(
        self,
        probes: Sequence[Any],
        k_max: int = CALIBRATION_KMAX,
        n_jobs: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Fit the cost model and accuracy profile from a few probe queries.

        Each probe is embedded, filter-scanned and exact-scanned against
        the whole database — charged honestly through the engine's
        accounting (through a shared store the scans also warm it).  The
        exact scans yield ground truth, from which the filter-rank profile
        (:func:`~repro.retrieval.evaluation.filter_ranks`) drives the
        accuracy-targeted ``p`` choice for any ``k`` up to ``k_max``.
        Returns the calibration record (probe cost, fit seconds), which is
        also kept on ``model.calibration``.
        """
        probes = list(probes)
        n = self.engine.n_database
        if not probes:
            raise RetrievalError("calibration needs at least one probe query")
        k_max = min(int(k_max), n)
        if k_max < 1:
            raise RetrievalError(f"k_max must be a positive integer, got {k_max}")
        started = time.perf_counter()

        t0 = time.perf_counter()
        vectors = np.asarray(self.embedder.embed_many(probes), dtype=float)
        embed_seconds = time.perf_counter() - t0

        t0 = time.perf_counter()
        for vector in vectors:
            self._exact_filter.distances(vector)
        float64_seconds = time.perf_counter() - t0
        quantized = self.engine.filter.quantized
        quantized_seconds = 0.0
        if quantized is not None:
            t0 = time.perf_counter()
            for vector in vectors:
                self.engine.filter.cut(vector, min(n, max(k_max, DEFAULT_P_MIN)))
            quantized_seconds = time.perf_counter() - t0

        refine = self.engine.refine
        all_positions = np.arange(n)
        rows: List[np.ndarray] = []
        spent_total = 0
        t0 = time.perf_counter()
        for obj in probes:
            if refine.binding is not None:
                values, spent = refine.binding.distances_to(obj, all_positions)
            else:
                values = np.asarray(
                    refine.counting.compute_many(obj, list(self.database)),
                    dtype=float,
                )
                spent = n
            rows.append(np.asarray(values, dtype=float))
            spent_total += int(spent)
        refine_seconds = time.perf_counter() - t0

        ground_truth = knn_from_distances(np.vstack(rows), k_max)
        self.rank_profile = filter_ranks(
            self.embedder, self.database_vectors, vectors, ground_truth
        )
        self.model.observe_batch(
            n_queries=len(probes),
            n_rows=n * len(probes),
            tier="float64",
            embed_seconds=embed_seconds,
            filter_seconds=float64_seconds,
            refine_seconds=refine_seconds,
            refine_evaluations=spent_total,
            refine_pairs=n * len(probes),
        )
        if quantized is not None and quantized_seconds > 0.0:
            self.model.filter_row_seconds[quantized.dtype] = self.model._blend(
                self.model.filter_row_seconds.get(quantized.dtype, 0.0),
                quantized_seconds / (n * len(probes)),
            )
        record = {
            "probes": len(probes),
            "k_max": k_max,
            "probe_evaluations": spent_total
            + self.engine.embed.cost * len(probes),
            "fit_seconds": time.perf_counter() - started,
            "exact_eval_seconds": self.model.exact_eval_seconds,
            "filter_row_seconds": dict(self.model.filter_row_seconds),
        }
        self.model.calibration = record
        return record

    # -- explain / health ------------------------------------------------

    def explain(self, k: int, p: Optional[int] = None) -> Dict[str, Any]:
        """Describe the plan one query at ``k`` would execute, without running it.

        Deterministic given the model state (the choosers it calls are
        RP012-pure).  With an explicit ``p`` the plan is the fixed flat
        pass-through; with ``p=None`` it is the adaptive plan the next
        query would get.
        """
        n = self.engine.n_database
        adaptive = p is None and self.mode == "adaptive"
        ceiling = self.choose_p(k) if p is None else int(p)
        k_eff, p_eff = clamp_query_params(k, ceiling, n)
        tier = self.choose_tier()
        remote_usable = self.remote is not None and not self._remote_degraded()
        backend = (
            self.model.choose_backend(
                p_eff, n, tier, self._sharded is not None, remote_usable
            )
            if adaptive
            else "flat"
        )
        return {
            "mode": self.mode,
            "adaptive": adaptive,
            "k": k_eff,
            "p": p_eff,
            "backend": backend,
            "tier": tier,
            "n_jobs": self.model.choose_n_jobs(1, p_eff, self._pool_workers()),
            "schedule": refine_schedule(p_eff, k_eff) if adaptive else [p_eff],
            "predicted_seconds": self.model.predict_query_seconds(p_eff, n, tier),
            "calibrated": self.rank_profile is not None,
            "model": self.model.to_dict(),
        }

    def planner_health(self) -> Dict[str, Any]:
        """Planner status for ``EmbeddingIndex.health()["planner"]``."""
        return {
            "mode": self.mode,
            "calibrated": self.rank_profile is not None,
            "target_accuracy": self.target_accuracy,
            "cost_budget": self.cost_budget,
            "planned_queries": self.planned_queries,
            "early_exits": self.early_exits,
            "last_decision": self._last_decision,
            "model": self.model.to_dict(),
        }

    # -- querying --------------------------------------------------------

    def query(
        self, obj: Any, k: int, p: Optional[int] = None, n_jobs: Optional[int] = None
    ) -> RetrievalResult:
        """One query: fixed pass-through with explicit ``p``, planned without."""
        if p is not None:
            return self.engine.query(obj, k, p, n_jobs=n_jobs)
        self._require_adaptive()
        return self._run_adaptive([obj], k)[0]

    def query_many(
        self,
        objects: Sequence[Any],
        k: int,
        p: Optional[int] = None,
        n_jobs: Optional[int] = None,
    ) -> List[RetrievalResult]:
        """Batched :meth:`query`; explicit ``p`` stays bit-identical to the
        flat pipeline, ``p=None`` runs the adaptive planner per query."""
        objects = list(objects)
        if p is not None:
            if n_jobs is None:
                n_jobs = self.model.choose_n_jobs(
                    len(objects), p, self._pool_workers()
                )
                if n_jobs is None:
                    n_jobs = self.n_jobs
            results = self.engine.query_many(objects, k, p, n_jobs=n_jobs)
            if results:
                self._observe_stats(results[0].stats, self.choose_tier())
            return results
        self._require_adaptive()
        return self._run_adaptive(objects, k)

    def _require_adaptive(self) -> None:
        if self.mode != "adaptive":
            raise RetrievalError(
                "backend 'planned' needs p (the number of filter candidates "
                "to refine) unless the planner is adaptive; enable it with "
                "IndexConfig(planner='adaptive') or pass p explicitly"
            )

    # -- the adaptive path -----------------------------------------------

    def _run_adaptive(self, objects: List[Any], k: int) -> List[RetrievalResult]:
        """Serve a batch with per-query planned ``p`` and incremental refine."""
        n = self.engine.n_database
        ceiling = self.choose_p(k)
        k_eff, p_eff = clamp_query_params(k, ceiling, n)
        if not objects:
            return []
        tier = self.choose_tier()
        remote_usable = self.remote is not None and not self._remote_degraded()
        backend = self.model.choose_backend(
            p_eff, n, tier, self._sharded is not None, remote_usable
        )
        decision = {
            "backend": backend,
            "tier": tier,
            "p": p_eff,
            "k": k_eff,
            "n_queries": len(objects),
            "calibrated": self.rank_profile is not None,
        }
        self._last_decision = decision
        if backend == "remote_sharded":
            return self._run_remote(objects, k, p_eff, decision)
        return self._run_local(objects, k_eff, p_eff, tier, backend, decision)

    def _run_remote(
        self,
        objects: List[Any],
        k: int,
        p_eff: int,
        decision: Dict[str, Any],
    ) -> List[RetrievalResult]:
        """Ship the whole batch to the remote delegate at the chosen ``p'``.

        A fixed-``p'`` remote run — the scatter/gather client's own
        bit-identity contract makes it equal to the local fixed-``p'``
        paths; there is no incremental early exit over the wire.
        """
        started = time.perf_counter()
        results = self.remote.query_many(objects, k, p_eff)
        elapsed = time.perf_counter() - started
        self.model.observe_remote(elapsed / len(objects))
        signals = getattr(self.remote, "cost_signals", None)
        if callable(signals):
            self.model.observe_shards(signals())
        self.planned_queries += len(objects)
        for result in results:
            result.stats = {
                **decision,
                "planned": True,
                "planned_p": p_eff,
                "early_exit": False,
            }
        return results

    def _run_local(
        self,
        objects: List[Any],
        k_eff: int,
        p_eff: int,
        tier: str,
        backend: str,
        decision: Dict[str, Any],
    ) -> List[RetrievalResult]:
        """The adaptive local path: cut at the ceiling, refine in slices."""
        if backend == "sharded" and self._sharded is not None:
            filter_stage: Any = self._sharded.engine.filter
            refine = self._sharded.engine.refine
        else:
            backend = "flat"
            refine = self.engine.refine
            filter_stage = (
                self.engine.filter if tier != "float64" else self._exact_filter
            )
        embed_seconds = 0.0
        filter_seconds = 0.0
        refine_seconds = 0.0
        charged_total = 0
        refined_total = 0
        results: List[RetrievalResult] = []
        embedding_cost = self.engine.embed.cost
        for obj in objects:
            t0 = time.perf_counter()
            vector = np.asarray(self.embedder.embed(obj), dtype=float)
            embed_seconds += time.perf_counter() - t0
            t0 = time.perf_counter()
            if backend == "sharded":
                candidates = filter_stage.merged(vector, p_eff)
            else:
                candidates = filter_stage.cut(vector, p_eff)
            filter_seconds += time.perf_counter() - t0
            t0 = time.perf_counter()
            exact, charged, chosen, early = self._refine_slices(
                obj, candidates, k_eff, refine, sharded=backend == "sharded"
            )
            refine_seconds += time.perf_counter() - t0
            charged_total += charged
            refined_total += chosen
            self.planned_queries += 1
            if early:
                self.early_exits += 1
            result = build_retrieval_result(
                candidates[:chosen],
                exact,
                k_eff,
                chosen,
                embedding_cost,
                refine_cost=charged if refine.binding is not None else None,
            )
            result.stats = {
                **decision,
                "planned": True,
                "planned_p": chosen,
                "early_exit": early,
                "refine_evaluations": charged,
            }
            results.append(result)
        self.model.observe_batch(
            n_queries=len(objects),
            n_rows=self.engine.n_database * len(objects),
            tier=tier,
            embed_seconds=embed_seconds,
            filter_seconds=filter_seconds,
            refine_seconds=refine_seconds,
            refine_evaluations=charged_total,
            refine_pairs=refined_total,
        )
        if backend == "sharded" and self._sharded is not None:
            self.model.observe_shards(self._sharded.shard_cost_signals())
        return results

    def _refine_slices(
        self,
        obj: Any,
        candidates: np.ndarray,
        k_eff: int,
        refine: Any,
        sharded: bool = False,
    ) -> Tuple[np.ndarray, int, int, bool]:
        """Refine a filter-ordered candidate list in prefix-extending slices.

        Stops as soon as the ranked top-``k`` is unchanged across one
        extension of the schedule (or the ceiling is reached).  Returns
        ``(exact_prefix, charged, p_chosen, early_exit)`` where
        ``p_chosen`` is the refined prefix length — *the* planner-chosen
        ``p'``.  Because stable cuts are prefix-closed and the refined
        pairs are exactly the fixed-``p'`` run's pairs, result and
        accounting are bit-identical to that run by construction.
        """
        p_ceiling = int(candidates.shape[0])
        exact = np.empty(p_ceiling, dtype=float)
        binding = refine.binding
        charged = 0
        done = 0
        previous_top: Optional[np.ndarray] = None
        early = False
        for target in refine_schedule(p_ceiling, k_eff):
            block = candidates[done:target]
            if sharded:
                # Route the slice per shard so the per-shard hit-rate
                # counters keep feeding the model; pairs are unique, so
                # the grouping cannot change values or charge.
                block_values = np.empty(block.shape[0], dtype=float)
                for sid, _local, positions in self._shard_split(block):
                    values, spent = binding.distances_to(obj, block[positions])
                    block_values[positions] = values
                    charged += int(spent)
                    refine.shard_evaluations[sid] += int(spent)
                    refine.shard_routed[sid] += int(positions.size)
                exact[done:target] = block_values
            elif binding is not None:
                values, spent = binding.distances_to(obj, block)
                exact[done:target] = values
                charged += int(spent)
            else:
                exact[done:target] = np.asarray(
                    refine.counting.compute_many(
                        obj, [self.database[int(i)] for i in block]
                    ),
                    dtype=float,
                )
                charged += int(block.size)
            done = target
            order = refine_order(exact[:done], candidates[:done], k_eff)
            top = candidates[:done][order]
            if previous_top is not None and np.array_equal(top, previous_top):
                early = done < p_ceiling
                break
            previous_top = top
        return exact[:done], charged, done, early

    def _shard_split(self, block: np.ndarray):
        """Per-shard split of one refine slice (sharded adaptive path)."""
        return self._sharded.engine.filter.split(block)
