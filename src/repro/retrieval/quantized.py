"""Quantized filter tier: low-precision scan, bit-identical results.

The filter step's cost is one weighted-L1 scan over the ``(n, d)`` float64
embedded database.  At 10-100x the current database sizes that table is
the working set: halving (float32) or eighthing (int8) its bytes halves
or eighths the memory traffic of every query's scan.  Quantization moves
each stored coordinate, though — so a naive quantized cut could pick
different candidates than the float64 scan and silently change results.

This module makes the low-precision scan *exact* by construction:

1. :meth:`QuantizedVectors.quantize` stores, next to the quantized codes,
   the **per-dimension maximum absolute quantization error** ``E_d``
   measured against the float64 table at quantization time.
2. For a weighted-L1 filter distance with per-query weights ``w`` the
   approximate score of any object differs from its true float64 score by
   at most ``err = sum_d |w_d| * E_d`` (:meth:`QuantizedVectors.error_bound`).
3. :func:`quantized_filter_cut` scans the quantized table, takes
   ``U = (p-th smallest approximate score) + 2*err`` (inflated slightly
   for float roundoff) and keeps the candidate **superset**
   ``{x : approx(x) <= U}`` — every true top-``p`` member, boundary ties
   included, provably lands inside it.
4. Only the superset is re-scored with the exact float64 rows (row-wise
   evaluation is bit-identical to a full-table scan — the same property
   the sharded merge relies on) and the stable top-``p`` cut runs on
   those exact values.

The final candidates, their tie order, and therefore every downstream
refine evaluation are **bit-identical** to the float64 path.  The cost of
the widening is charged honestly as ``p' = |superset| >= p`` exact
filter-vector evaluations, surfaced by the filter-stage counters and
``EmbeddingIndex.health()``.

Why the superset argument holds: let ``t`` be the ``p``-th smallest true
score and ``T`` the ``p``-th smallest approximate score.  At least ``p``
objects satisfy ``approx <= T``, each of which has ``true <= T + err``,
so ``t <= T + err``.  Any true top-``p`` member (or boundary tie) ``x``
has ``true(x) <= t``, hence ``approx(x) <= true(x) + err <= T + 2*err``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.embeddings.base import Embedding
from repro.exceptions import RetrievalError

__all__ = [
    "QUANTIZED_DTYPES",
    "QuantizedVectors",
    "filter_weights",
    "quantized_filter_cut",
]

#: Supported low-precision storage dtypes for the filter tier.  ``float64``
#: is the identity configuration (no quantized table at all).
QUANTIZED_DTYPES = ("float32", "int8")

#: Rows per block of the quantized scan: bounds the float64 temporaries the
#: dequantize-and-score loop materializes to ``BLOCK x d`` regardless of
#: database size.
_SCAN_BLOCK = 4096

#: int8 codes span [-127, 127]: 254 steps, symmetric so that negating a
#: table negates its codes and -128 is never produced.
_INT8_STEPS = 254.0
_INT8_MAX = 127.0


class QuantizedVectors:
    """A low-precision copy of an embedded database with exact error bounds.

    Build one with :meth:`quantize`; the constructor is for payload
    round-trips and shard slicing.  Instances are immutable and cheap to
    slice (codes are views; the per-dimension metadata is shared).

    Attributes
    ----------
    dtype:
        ``"float32"`` or ``"int8"`` (the storage dtype of :attr:`codes`).
    codes:
        The ``(n, d)`` quantized table.
    scale, offset:
        Per-dimension dequantization parameters (``value = code * scale +
        offset``).  For ``float32`` they are identity (ones / zeros) —
        the codes are the values.
    dim_error:
        ``(d,)`` float64 per-dimension maximum absolute quantization error
        ``E_d = max_n |table[n, d] - dequantized[n, d]|``, measured against
        the float64 table at quantization time.  For a sliced shard this is
        the whole-table maximum — still a valid (if slightly loose) bound.
    """

    def __init__(
        self,
        dtype: str,
        codes: np.ndarray,
        scale: np.ndarray,
        offset: np.ndarray,
        dim_error: np.ndarray,
    ) -> None:
        if dtype not in QUANTIZED_DTYPES:
            raise RetrievalError(
                f"unsupported quantized dtype {dtype!r}; "
                f"expected one of {QUANTIZED_DTYPES}"
            )
        self.dtype = str(dtype)
        self.codes = codes
        self.scale = np.asarray(scale, dtype=float)
        self.offset = np.asarray(offset, dtype=float)
        self.dim_error = np.asarray(dim_error, dtype=float)
        if self.codes.ndim != 2:
            raise RetrievalError("quantized codes must be a 2-D array")
        d = self.codes.shape[1]
        for name, arr in (
            ("scale", self.scale),
            ("offset", self.offset),
            ("dim_error", self.dim_error),
        ):
            if arr.shape != (d,):
                raise RetrievalError(
                    f"quantized {name} must have shape ({d},), got {arr.shape}"
                )

    # -- construction ----------------------------------------------------

    @classmethod
    def quantize(cls, vectors: np.ndarray, dtype: str = "float32") -> "QuantizedVectors":
        """Quantize a float64 ``(n, d)`` table, recording exact error bounds.

        ``float32`` is a plain downcast.  ``int8`` maps each dimension's
        ``[min, max]`` range affinely onto ``[-127, 127]`` (a constant
        dimension quantizes exactly).  Either way ``dim_error`` is measured
        — not estimated — by dequantizing the codes through the very same
        float64 expression the scan uses, so the bound is tight and exact.
        """
        vectors = np.asarray(vectors, dtype=float)
        if vectors.ndim != 2:
            raise RetrievalError("vectors to quantize must be a 2-D array")
        n, d = vectors.shape
        if dtype == "float32":
            codes = vectors.astype(np.float32)
            scale = np.ones(d)
            offset = np.zeros(d)
            dequantized = codes.astype(np.float64)
        elif dtype == "int8":
            if n:
                lo = vectors.min(axis=0)
                hi = vectors.max(axis=0)
            else:
                lo = np.zeros(d)
                hi = np.zeros(d)
            scale = (hi - lo) / _INT8_STEPS
            scale[scale == 0.0] = 1.0
            offset = (hi + lo) / 2.0
            codes = np.clip(
                np.rint((vectors - offset[None, :]) / scale[None, :]),
                -_INT8_MAX,
                _INT8_MAX,
            ).astype(np.int8)
            dequantized = codes.astype(np.float64) * scale[None, :] + offset[None, :]
        else:
            raise RetrievalError(
                f"unsupported quantized dtype {dtype!r}; "
                f"expected one of {QUANTIZED_DTYPES}"
            )
        if n:
            dim_error = np.abs(vectors - dequantized).max(axis=0)
        else:
            dim_error = np.zeros(d)
        return cls(dtype, codes, scale, offset, dim_error)

    # -- shape -----------------------------------------------------------

    def __len__(self) -> int:
        return int(self.codes.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality of the quantized vectors."""
        return int(self.codes.shape[1])

    @property
    def nbytes(self) -> int:
        """Bytes of the quantized table (codes only — the scan's working set)."""
        return int(self.codes.nbytes)

    def slice(self, start: int, stop: int) -> "QuantizedVectors":
        """A shard's view of the table (codes are a view, metadata shared).

        ``dim_error`` stays the whole-table maximum, which remains a valid
        upper bound for every row of the slice — so a sharded scan merged
        across slices keeps the same superset guarantee.
        """
        return QuantizedVectors(
            self.dtype, self.codes[start:stop], self.scale, self.offset, self.dim_error
        )

    # -- scoring ---------------------------------------------------------

    def error_bound(self, weights: Optional[np.ndarray]) -> float:
        """``sum_d |w_d| * E_d`` — the per-object score error bound.

        ``weights=None`` means the unweighted L1 of a plain embedding
        (all-ones weights).
        """
        if weights is None:
            return float(self.dim_error.sum())
        return float(np.abs(np.asarray(weights, dtype=float)).dot(self.dim_error))

    def approx_distances(
        self, query_vector: np.ndarray, weights: Optional[np.ndarray]
    ) -> np.ndarray:
        """Weighted-L1 scores of the query against the *dequantized* table.

        The arithmetic is float64 over dequantized values (float32 codes
        promote on subtraction; int8 codes dequantize blockwise), so the
        only deviation from the true float64 score is the coordinate
        perturbation covered by :meth:`error_bound`.  Evaluated in blocks
        of ``_SCAN_BLOCK`` rows to bound temporary memory.
        """
        q = np.asarray(query_vector, dtype=float)
        n = len(self)
        out = np.empty(n, dtype=float)
        w = None if weights is None else np.asarray(weights, dtype=float)
        for start in range(0, n, _SCAN_BLOCK):
            stop = min(start + _SCAN_BLOCK, n)
            block = self.codes[start:stop]
            if self.dtype == "int8":
                block = block.astype(np.float64) * self.scale[None, :] + self.offset[None, :]
            diff = np.abs(block - q[None, :])
            out[start:stop] = diff.sum(axis=1) if w is None else diff.dot(w)
        return out

    # -- persistence -----------------------------------------------------

    def to_payload(self) -> Dict[str, np.ndarray]:
        """Arrays for ``np.savez`` (round-trips via :meth:`from_payload`)."""
        return {
            "quantized_dtype": np.asarray(self.dtype),
            "codes": self.codes,
            "scale": self.scale,
            "offset": self.offset,
            "dim_error": self.dim_error,
        }

    @classmethod
    def from_payload(cls, payload: Any) -> "QuantizedVectors":
        """Rebuild from a ``to_payload()`` mapping (or a loaded ``.npz``)."""
        try:
            return cls(
                str(np.asarray(payload["quantized_dtype"])[()]),
                np.asarray(payload["codes"]),
                np.asarray(payload["scale"], dtype=float),
                np.asarray(payload["offset"], dtype=float),
                np.asarray(payload["dim_error"], dtype=float),
            )
        except (KeyError, ValueError, TypeError) as exc:
            raise RetrievalError(f"invalid quantized-vectors payload: {exc}") from exc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QuantizedVectors(dtype={self.dtype!r}, n={len(self)}, "
            f"dim={self.dim}, nbytes={self.nbytes})"
        )


def filter_weights(
    embedder: Union[QuerySensitiveModel, Embedding], query_vector: np.ndarray
) -> Optional[np.ndarray]:
    """Per-coordinate filter weights for one query (``None`` = all ones).

    Mirrors :func:`repro.retrieval.engine.filter_vector_distances`: a
    query-sensitive model scores with its per-query weights ``A_i(q)``, a
    plain embedding with unweighted L1.
    """
    if isinstance(embedder, QuerySensitiveModel):
        return embedder.weights(np.asarray(query_vector, dtype=float))
    return None


def quantized_filter_cut(
    quantized: QuantizedVectors,
    embedder: Union[QuerySensitiveModel, Embedding],
    query_vector: np.ndarray,
    database_vectors: np.ndarray,
    p: Optional[int],
) -> Tuple[np.ndarray, np.ndarray, int]:
    """The stable top-``p`` filter cut evaluated through the quantized table.

    Returns ``(candidates, exact_values, widened)``: the candidate database
    indices in stable (exact distance, index) order — **bit-identical** to
    ``stable_smallest(filter_vector_distances(...), p)`` over the float64
    table — their exact float64 filter distances (what a sharded merge
    ranks on), and ``widened = p'``, the number of objects whose exact
    float64 row was evaluated (the honest cost of absorbing quantization
    error; ``p' >= p`` whenever the quantized scan ran).

    With ``p`` at or above the database size the cut degenerates to a full
    exact scan (the quantized table cannot save anything) and ``widened``
    is the database size.
    """
    # Import here: engine imports this module's stage helpers and vice versa
    # would otherwise cycle at import time.
    from repro.retrieval.engine import filter_vector_distances, stable_smallest

    n = len(quantized)
    if database_vectors.shape[0] != n:
        raise RetrievalError(
            f"quantized table has {n} rows but the float64 table has "
            f"{database_vectors.shape[0]}; they must describe the same database"
        )
    if n == 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=float), 0
    if p is None or p >= n:
        exact = filter_vector_distances(embedder, query_vector, database_vectors)
        order = stable_smallest(exact, p)
        return order, exact[order], n
    if p <= 0:
        return np.zeros(0, dtype=int), np.zeros(0, dtype=float), 0

    weights = filter_weights(embedder, query_vector)
    approximate = quantized.approx_distances(query_vector, weights)
    bound = quantized.error_bound(weights)
    threshold = np.partition(approximate, p - 1)[p - 1]
    # 2*err covers quantization both ways (see the module docstring); the
    # relative + absolute inflation covers float64 summation roundoff in
    # the scores themselves.  Overshoot only grows the superset slightly.
    cutoff = threshold + 2.0 * bound
    cutoff += 1e-9 * abs(cutoff) + 1e-300
    superset = np.flatnonzero(approximate <= cutoff)
    exact = filter_vector_distances(
        embedder, query_vector, database_vectors[superset]
    )
    # ``superset`` is ascending in database index, so the stable cut on the
    # exact values breaks boundary ties by global index — exactly like the
    # full-table stable cut, whose winners all lie inside the superset.
    local = stable_smallest(exact, p)
    return superset[local], exact[local], int(superset.size)
