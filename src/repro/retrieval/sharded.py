"""Sharded filter-and-refine retrieval.

:class:`ShardedRetriever` partitions the database into ``S`` contiguous
shards and runs the embedding-filter + exact-refine pipeline of
:class:`~repro.retrieval.filter_refine.FilterRefineRetriever` per shard,
merging per-shard candidates into globally exact top-``k`` results.  The
point is serving shape: each shard's filter scan and refine batch is an
independent unit of work that can fan out across worker processes today
(``n_jobs``) and across remote workers later, while results stay
*bit-identical* to the single-process unsharded path.

Since the :mod:`repro.retrieval.engine` refactor the retriever is a thin
configuration of :class:`~repro.retrieval.engine.QueryEngine`: the shard
merge lives in :class:`~repro.retrieval.engine.ShardedFilterStage` and the
per-(query, shard) refine routing in
:class:`~repro.retrieval.engine.RefineStage` — shared with the unsharded
pipeline, so tie-breaking, clamping and accounting cannot drift.

Shard/merge semantics
---------------------
Shards are contiguous database index ranges (``np.array_split`` over
``[0, n)``), so a shard-local index plus the shard offset is the global
database index and global tie-breaking by index is preserved.  Per query:

1. **Filter per shard** — compute filter distances against the shard's slice
   of the embedded database (row-wise, so values equal the full-database
   computation bit-for-bit) and keep the shard's ``min(p, shard_size)`` best
   candidates in stable (distance, index) order.
2. **Merge** — concatenate the per-shard survivor lists in shard order and
   take the globally best ``p`` by a stable sort on filter distance.
   Because each shard list is stable-ordered and shard order equals global
   index order, concatenation order breaks distance ties by ascending global
   index — exactly what the unsharded stable filter cut does, so the merged
   candidate list is identical to
   :meth:`~repro.retrieval.filter_refine.FilterRefineRetriever.filter_order`.
   (A shard's local top-``min(p, shard_size)`` necessarily contains every
   global top-``p`` member of that shard, so no candidate is lost.)
3. **Refine per shard** — evaluate the exact distances from the query to its
   surviving candidates shard by shard (one batched ``compute_many`` per
   shard), scatter them back into filter order, and keep the best
   ``min(k, n)`` with ties again resolved by global database index — the
   same brute-force-identical order as the unsharded path.

The per-query cost is unchanged: ``embedding.cost`` exact distances to embed
plus exactly ``p`` to refine, regardless of the shard count.

Parallelism and accounting
--------------------------
``n_jobs`` fans the refine work out over a process pool — per shard for
:meth:`ShardedRetriever.query`, per (query, shard) pair for
:meth:`ShardedRetriever.query_many` — through
:func:`repro.distances.parallel.parallel_refine`.  Accounting follows the
matrix builders' rule: top-level
:class:`~repro.distances.base.CountingDistance` wrappers stay in the parent
and are charged one evaluation per refined candidate (so per-query counts
are identical to the serial path), workers receive the inner measure, and an
identity-keyed :class:`~repro.distances.base.CachedDistance` is rejected
because its keys cannot survive the process boundary — use a
:class:`~repro.distances.context.DistanceContext` (stable dataset-index
keys) or supply a stable ``key`` function to cache under ``n_jobs``.

Store-aware refine routing
--------------------------
When the retriever is built on a
:class:`~repro.distances.context.DistanceContext`, the refine step goes
through the context's shared store *per (query, shard) group*: each
shard's store hits are resolved in the parent and only its missing pairs
are evaluated, so a shard whose pairs are already cached receives zero
exact evaluations.  :attr:`ShardedRetriever.shard_refine_evaluations`
accumulates the evaluations routed to each shard — the hit-rate signal the
ROADMAP's store-aware shard placement reads to route refine work where the
pairs are already cached.  Per-query
``refine_distance_computations`` reports the evaluations actually
performed, ``n_jobs`` fan-out happens inside
:meth:`~repro.distances.context.DistanceContext.distances_to_many` (store
and counters stay in the parent), and the refined values — and therefore
the merged neighbors — remain bit-identical to the unsharded context path
(a query's candidates are unique and shard ranges disjoint, so the groups
partition exactly the pairs the unsharded call resolves).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.datasets.base import Dataset
from repro.distances.base import CountingDistance, DistanceMeasure
from repro.embeddings.base import Embedding
from repro.exceptions import RetrievalError
from repro.retrieval.engine import QueryEngine, RetrievalResult
from repro.retrieval.quantized import QuantizedVectors

__all__ = ["Shard", "ShardedRetriever"]


@dataclass
class Shard:
    """One contiguous partition of the database.

    Attributes
    ----------
    offset:
        Global database index of the shard's first object.
    objects:
        The shard's objects (shared references into the database).
    vectors:
        The shard's slice of the embedded database matrix.
    """

    offset: int
    objects: List[Any]
    vectors: np.ndarray

    def __len__(self) -> int:
        return len(self.objects)


class ShardedRetriever:
    """Filter-and-refine retrieval over a sharded database.

    Results (neighbors, distances, candidate lists and per-query cost
    accounting) are bit-identical to an unsharded
    :class:`~repro.retrieval.filter_refine.FilterRefineRetriever` built on
    the same distance, database and embedder — sharding changes how the work
    is laid out, never what is computed.  See the module docstring for the
    merge semantics and the parallel accounting rules.

    Parameters
    ----------
    distance:
        The exact distance measure (refine step; also used by the embedder).
    database:
        The database to search.
    embedder:
        A trained :class:`~repro.core.model.QuerySensitiveModel` or any
        :class:`~repro.embeddings.base.Embedding`.
    n_shards:
        Number of contiguous shards to partition the database into; clamped
        to the database size.
    database_vectors:
        Optional precomputed ``(n, d)`` matrix of database embeddings (the
        same matrix an unsharded retriever would use; it is sliced per
        shard).  When omitted, the database is embedded at construction time.
    n_jobs:
        Default worker-process count for queries; ``None``/``0``/``1`` =
        serial, ``-1`` = all CPUs.  Overridable per call.
    quantized:
        Optional :class:`~repro.retrieval.quantized.QuantizedVectors` copy
        of the embedded database; each shard scans its slice of the
        low-precision table and re-scores an error-bounded superset with
        its exact float64 rows, so the merged candidates — and every
        downstream result — stay bit-identical to the exact scan (the
        superset cost is charged in :attr:`filter_widened_total`).
    """

    def __init__(
        self,
        distance: DistanceMeasure,
        database: Dataset,
        embedder: Union[QuerySensitiveModel, Embedding],
        n_shards: int = 2,
        database_vectors: Optional[np.ndarray] = None,
        n_jobs: Optional[int] = None,
        quantized: Optional[QuantizedVectors] = None,
    ) -> None:
        if not isinstance(distance, DistanceMeasure):
            raise RetrievalError("distance must be a DistanceMeasure instance")
        if not isinstance(database, Dataset):
            raise RetrievalError("database must be a Dataset")
        if not isinstance(embedder, (QuerySensitiveModel, Embedding)):
            raise RetrievalError(
                "embedder must be a QuerySensitiveModel or an Embedding"
            )
        if n_shards < 1:
            raise RetrievalError(f"n_shards must be at least 1, got {n_shards}")
        self.database = database
        self.embedder = embedder
        self.n_jobs = n_jobs
        self._quantized = quantized
        if database_vectors is None:
            database_vectors = embedder.embed_many(list(database))
        self.database_vectors = np.asarray(database_vectors, dtype=float)
        if self.database_vectors.shape != (len(database), self.dim):
            raise RetrievalError(
                f"database_vectors must have shape ({len(database)}, {self.dim}), "
                f"got {self.database_vectors.shape}"
            )
        objects = list(database)
        splits = np.array_split(np.arange(len(database)), min(n_shards, len(database)))
        self.shards: List[Shard] = [
            Shard(
                offset=int(chunk[0]),
                objects=[objects[int(i)] for i in chunk],
                vectors=self.database_vectors[chunk[0] : chunk[-1] + 1],
            )
            for chunk in splits
            if chunk.size
        ]
        self.engine = QueryEngine.sharded(
            distance, database, embedder, self.shards, quantized=quantized
        )

    @property
    def n_shards(self) -> int:
        """Number of database shards."""
        return len(self.shards)

    @property
    def shard_sizes(self) -> Tuple[int, ...]:
        """Object count per shard."""
        return tuple(len(shard) for shard in self.shards)

    @property
    def dim(self) -> int:
        """Dimensionality of the embedding used for filtering."""
        return self.embedder.dim

    @property
    def embedding_cost(self) -> int:
        """Exact distances needed to embed one query."""
        return self.embedder.cost

    @property
    def _binding(self):
        return self.engine.refine.binding

    @property
    def _refine_distance(self) -> Optional[CountingDistance]:
        return self.engine.refine.counting

    @property
    def refine_distance_evaluations(self) -> int:
        """Total exact distances spent refining, across all queries so far.

        For a context-backed retriever this counts the evaluations actually
        performed (store hits are free).
        """
        return self.engine.refine.calls

    @property
    def quantized(self) -> Optional[QuantizedVectors]:
        """The (whole-table) quantized filter tier, when one is bound."""
        if self.engine.filter.shard_quantized is None:
            return None
        return self._quantized

    @property
    def filter_widened_queries(self) -> int:
        """Queries answered through the quantized filter scan so far."""
        return self.engine.filter.widened_queries

    @property
    def filter_widened_total(self) -> int:
        """Total widened candidate count across those queries (all shards).

        The exact float64 filter rows evaluated to absorb quantization
        error; ``0`` without a quantized table.
        """
        return self.engine.filter.widened_total

    @property
    def shard_refine_evaluations(self) -> np.ndarray:
        """Exact refine evaluations routed to each shard so far.

        On the context-backed path store hits are free, so a shard whose
        candidate pairs are already cached accumulates zero — the signal a
        store-aware placement policy uses to route refine work to warm
        shards.  On the plain-measure path this is the nominal per-shard
        candidate count.
        """
        return self.engine.refine.shard_evaluations.copy()

    def shard_cost_signals(self) -> List[dict]:
        """Per-shard routing/cost signals for the query planner.

        One record per shard: ``shard`` (id), ``size`` (object count),
        ``routed_pairs`` (candidate pairs routed to the shard so far) and
        ``evaluations`` (how many of those the store did not absorb).  The
        planner's :meth:`~repro.retrieval.planner.CostModel.observe_shards`
        turns these into per-shard store hit rates.
        """
        refine = self.engine.refine
        routed = (
            refine.shard_routed
            if refine.shard_routed is not None
            else np.zeros(self.n_shards, dtype=int)
        )
        return [
            {
                "shard": sid,
                "size": len(shard),
                "routed_pairs": int(routed[sid]),
                "evaluations": int(refine.shard_evaluations[sid]),
            }
            for sid, shard in enumerate(self.shards)
        ]

    # ------------------------------------------------------------------ #
    # Filter + merge                                                     #
    # ------------------------------------------------------------------ #

    def merged_candidates(self, query_vector: np.ndarray, p: int) -> np.ndarray:
        """Global top-``p`` filter candidates, merged across shards.

        Identical — including tie-breaking by database index — to the
        unsharded ``filter_order(query_vector, p)`` (see the module
        docstring for why the merge preserves the stable order).
        """
        return self.engine.filter.merged(query_vector, p)

    def _split_by_shard(self, candidates: np.ndarray):
        """Partition a global candidate list into per-shard refine work.

        Returns ``(shard_id, local_indices, positions)`` triples, where
        ``positions`` locates each shard candidate inside the filter-ordered
        candidate array, so refined distances can be scattered back.
        """
        return self.engine.filter.split(candidates)

    # ------------------------------------------------------------------ #
    # Queries                                                            #
    # ------------------------------------------------------------------ #

    def query(
        self, obj: Any, k: int, p: int, n_jobs: Optional[int] = None
    ) -> RetrievalResult:
        """Retrieve the approximate ``k`` nearest neighbors of ``obj``.

        ``k`` and ``p`` are clamped exactly like the unsharded retriever
        (``p`` into ``[min(k, n), n]``), so exactly ``min(k, n)`` neighbors
        come back.  With ``n_jobs > 1`` the per-shard refine batches fan out
        over a process pool.
        """
        return self.engine.query(
            obj, k, p, n_jobs=self.n_jobs if n_jobs is None else n_jobs
        )

    def query_many(
        self,
        objects: Sequence[Any],
        k: int,
        p: int,
        n_jobs: Optional[int] = None,
    ) -> List[RetrievalResult]:
        """Batched :meth:`query` over a sequence of query objects.

        Queries are embedded with one batched ``embed_many`` call and
        filtered/merged in the parent process; the refine work — one batch
        per (query, shard) pair — runs serially or over a process pool
        (``n_jobs``).  Results and per-query exact-distance accounting are
        bit-identical to the serial unsharded
        :meth:`~repro.retrieval.filter_refine.FilterRefineRetriever.query_many`.
        """
        return self.engine.query_many(
            objects, k, p, n_jobs=self.n_jobs if n_jobs is None else n_jobs
        )
