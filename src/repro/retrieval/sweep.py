"""Dimensionality sweeps and the optimal (d, p) search of Sec. 9.

The paper evaluates every method at "the optimal parameters": for each
``(k, accuracy)`` pair it searches over the embedding dimensionality ``d``
and the filter size ``p`` for the combination minimising the number of exact
distance computations per query.  Because both the trained models
(:meth:`QuerySensitiveModel.truncate`) and FastMap
(:meth:`FastMapEmbedding.prefix`) order their coordinates by construction,
a single full-dimensional embedding of the database and queries is enough:
lower-dimensional variants reuse the leading columns of those matrices, so
the sweep costs no additional exact distance computations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.core.model import QuerySensitiveModel
from repro.datasets.base import Dataset
from repro.distances.base import DistanceMeasure
from repro.embeddings.base import Embedding
from repro.embeddings.fastmap import FastMapEmbedding
from repro.exceptions import RetrievalError
from repro.retrieval.engine import (
    QueryEngine,
    RetrievalResult,
    build_retrieval_result,
    clamp_query_params,
)
from repro.retrieval.evaluation import (
    AccuracyCostPoint,
    FilterRankResult,
    cost_for_accuracy,
    filter_ranks,
)
from repro.retrieval.knn import NeighborTable

Embedder = Union[QuerySensitiveModel, Embedding]


def truncate_embedder(embedder: Embedder, dim: int) -> Embedder:
    """Return a lower-dimensional version of a trained embedder.

    Trained models are truncated to their first coordinates; FastMap
    embeddings keep their first levels; composite embeddings keep their first
    coordinates.  Anything else is rejected.
    """
    if isinstance(embedder, QuerySensitiveModel):
        return embedder if dim == embedder.dim else embedder.truncate(dim)
    if isinstance(embedder, Embedding):
        if dim == embedder.dim:
            return embedder
        if hasattr(embedder, "prefix"):
            return embedder.prefix(dim)
    raise RetrievalError(
        f"{type(embedder).__name__} does not support dimensionality truncation"
    )


@dataclass
class SweepEntry:
    """Filter ranks of one dimensionality setting within a sweep."""

    dim: int
    rank_result: FilterRankResult


class DimensionSweep:
    """Evaluate one embedding method across several dimensionalities.

    Parameters
    ----------
    embedder:
        The full-dimensional trained model or embedding.
    database_vectors, query_vectors:
        Full-dimensional embedding matrices of the database and queries.
    ground_truth:
        Exact nearest neighbors of the queries.
    dims:
        The dimensionalities to evaluate; values exceeding ``embedder.dim``
        are clipped to it (and duplicates removed).
    """

    def __init__(
        self,
        embedder: Embedder,
        database_vectors: np.ndarray,
        query_vectors: np.ndarray,
        ground_truth: NeighborTable,
        dims: Sequence[int],
    ) -> None:
        self.embedder = embedder
        self.database_vectors = np.asarray(database_vectors, dtype=float)
        self.query_vectors = np.asarray(query_vectors, dtype=float)
        self.ground_truth = ground_truth
        if self.database_vectors.shape[1] != embedder.dim:
            raise RetrievalError(
                "database_vectors dimensionality does not match the embedder"
            )
        if self.query_vectors.shape[1] != embedder.dim:
            raise RetrievalError(
                "query_vectors dimensionality does not match the embedder"
            )
        cleaned: List[int] = []
        for dim in dims:
            dim = int(min(dim, embedder.dim))
            if dim >= 1 and dim not in cleaned:
                cleaned.append(dim)
        if not cleaned:
            raise RetrievalError("the dimensionality sweep needs at least one value")
        self.dims = sorted(cleaned)
        self.entries: List[SweepEntry] = [
            self._evaluate_dim(dim) for dim in self.dims
        ]

    def _evaluate_dim(self, dim: int) -> SweepEntry:
        reduced = truncate_embedder(self.embedder, dim)
        rank_result = filter_ranks(
            reduced,
            self.database_vectors[:, :dim],
            self.query_vectors[:, :dim],
            self.ground_truth,
        )
        return SweepEntry(dim=dim, rank_result=rank_result)

    def best_point(
        self, k: int, accuracy: float, database_size: Optional[int] = None
    ) -> AccuracyCostPoint:
        """The minimum-cost (d, p) combination for one (k, accuracy) target."""
        if database_size is None:
            database_size = self.database_vectors.shape[0]
        best: Optional[AccuracyCostPoint] = None
        for entry in self.entries:
            point = cost_for_accuracy(entry.rank_result, k, accuracy, database_size)
            if best is None or point.cost < best.cost:
                best = point
        assert best is not None  # self.entries is never empty
        return best


def run_sweep(
    distance: DistanceMeasure,
    database: Dataset,
    embedder: Embedder,
    queries: Sequence,
    k: int,
    ps: Sequence[int],
    database_vectors: Optional[np.ndarray] = None,
) -> Dict[int, List[RetrievalResult]]:
    """Sweep the filter size ``p`` over one warm retrieval pipeline.

    Runs every query once through a single shared engine: the embedding and
    the filter cut at the *largest* swept ``p`` are computed once per query,
    and each smaller sweep point reuses a prefix of that cut (stable
    top-``p`` cuts are prefix-closed), refining only the candidate block
    each point adds.  A naive sweep re-pays the embed + filter scan — and,
    without a shared store, the whole refine — for every point.

    Returns ``{p: [RetrievalResult, ...]}`` keyed by the requested ``p``
    values, results in query order.  Every point is bit-identical —
    neighbors, tie order and per-query accounting — to a fixed-``p``
    ``query_many`` run started from the store state the sweep began with:
    on a context-backed ``distance`` each point's ``refine_cost`` is the
    cumulative evaluations its prefix actually missed (exactly what the
    fixed run would have been charged), and this equals the adaptive
    planner's charge at its chosen ``p'`` — the parity the sweep tests
    assert.
    """
    ps_clean: List[int] = []
    for p in ps:
        p = int(p)
        if p < 1:
            raise RetrievalError(f"swept p values must be positive, got {p}")
        if p not in ps_clean:
            ps_clean.append(p)
    if not ps_clean:
        raise RetrievalError("the p sweep needs at least one value")
    ps_clean.sort()
    queries = list(queries)
    engine = QueryEngine.filter_refine(
        distance,
        database,
        embedder,
        embedder.embed_many(list(database))
        if database_vectors is None
        else database_vectors,
    )
    n = engine.n_database
    refine = engine.refine
    results: Dict[int, List[RetrievalResult]] = {p: [] for p in ps_clean}
    _, p_max_eff = clamp_query_params(k, ps_clean[-1], n)
    for obj in queries:
        vector = np.asarray(engine.embed.embedder.embed(obj), dtype=float)
        candidates = engine.filter.cut(vector, p_max_eff)
        exact = np.empty(p_max_eff, dtype=float)
        done = 0
        charged = 0
        for p in ps_clean:
            k_eff, p_eff = clamp_query_params(k, p, n)
            if p_eff > done:
                block = candidates[done:p_eff]
                if refine.binding is not None:
                    values, spent = refine.binding.distances_to(obj, block)
                    exact[done:p_eff] = values
                    charged += int(spent)
                else:
                    exact[done:p_eff] = np.asarray(
                        refine.counting.compute_many(
                            obj, [database[int(i)] for i in block]
                        ),
                        dtype=float,
                    )
                    charged += int(block.size)
                done = p_eff
            results[p].append(
                build_retrieval_result(
                    candidates[:p_eff],
                    exact[:p_eff],
                    k_eff,
                    p_eff,
                    engine.embed.cost,
                    refine_cost=charged if refine.binding is not None else None,
                )
            )
    return results


def optimal_cost_curve(
    sweep: DimensionSweep,
    ks: Sequence[int],
    accuracies: Sequence[float],
    database_size: Optional[int] = None,
) -> Dict[float, Dict[int, AccuracyCostPoint]]:
    """Full accuracy/cost table for one method.

    Returns a nested mapping ``{accuracy: {k: AccuracyCostPoint}}`` — the raw
    material of Figures 4/5/6 and Table 1.
    """
    results: Dict[float, Dict[int, AccuracyCostPoint]] = {}
    for accuracy in accuracies:
        per_k: Dict[int, AccuracyCostPoint] = {}
        for k in ks:
            per_k[int(k)] = sweep.best_point(int(k), float(accuracy), database_size)
        results[float(accuracy)] = per_k
    return results
