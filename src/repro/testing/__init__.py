"""Test-support seams shipped with the library.

Only the chaos suite and the ops scripts import from here; nothing in the
serving path depends on this package unless a
:class:`~repro.testing.faults.FaultPlan` is explicitly injected.
"""

from repro.testing.faults import FaultPlan, FaultyTask, flip_byte, truncate_file

__all__ = ["FaultPlan", "FaultyTask", "flip_byte", "truncate_file"]
