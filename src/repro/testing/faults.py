"""Deterministic fault injection for the serving stack.

The chaos suite (``tests/test_fault_tolerance.py``) needs to kill workers,
delay replies, and corrupt payloads *mid-batch*, reproducibly, without
monkeypatching pool internals.  The seam is
:attr:`~repro.index.pool.PersistentPool.faults`: when set to a
:class:`FaultPlan`, every task the pool submits is wrapped in a
:class:`FaultyTask` that consults the plan on the worker side before and
after running the real task.

Workers coordinate through the pool's manager dict (the one channel that
already exists): a global chunk counter and fired-once flags live under
string keys — state payloads are keyed by integer id, so the namespaces
cannot collide.  The counter survives worker respawns because the manager
process does, which is exactly what makes "kill the worker handling chunk
N, once" deterministic across the recovery.

File-level faults (:func:`truncate_file`, :func:`flip_byte`) corrupt saved
artifacts in place for the artifact-hardening tests; they operate on real
files produced by real ``save`` calls, not synthetic fixtures.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

__all__ = ["FaultPlan", "FaultyTask", "truncate_file", "flip_byte"]

#: Manager-dict keys for cross-worker fault coordination.  String keys:
#: the pool's state payloads use integer ids, so these can never collide.
_CHUNK_COUNTER_KEY = "__fault_chunk_counter__"
_KILL_FIRED_KEY = "__fault_kill_fired__"
_CORRUPT_FIRED_KEY = "__fault_corrupt_fired__"


def _worker_proxy() -> Any:
    """The manager-dict proxy installed in this worker process."""
    from repro.index import pool as pool_module

    return pool_module._WORKER_PROXY


def _next_chunk(proxy: Any) -> int:
    """Advance and return the global 1-based chunk sequence number."""
    count = proxy.get(_CHUNK_COUNTER_KEY, 0) + 1
    proxy[_CHUNK_COUNTER_KEY] = count
    return count


def _claim(proxy: Any, key: str) -> bool:
    """Fire-once latch: ``True`` for exactly the first claimant (best effort)."""
    if proxy.get(key):
        return False
    proxy[key] = True
    return True


def _corrupt_reply(reply: Any) -> Any:
    """Damage a reply payload the way a torn pipe read would.

    Refine replies are ``[(key, ndarray), ...]``: the first array loses its
    last element, so the parent's length validation must catch it.  Other
    list payloads lose their last entry; anything else is replaced by
    ``None``.  Every shape is detectably wrong — corruption must never
    masquerade as a valid result.
    """
    if isinstance(reply, list) and reply:
        head = reply[0]
        if isinstance(head, tuple) and len(head) == 2:
            key, values = head
            return [(key, values[:-1])] + list(reply[1:])
        return list(reply[:-1])
    return None


@dataclass
class FaultPlan:
    """A deterministic schedule of injected failures for one pool.

    Parameters
    ----------
    kill_after_chunks:
        Kill the worker process about to run the Nth chunk (1-based,
        counted across all workers and submissions via the manager), by
        ``os._exit`` — the abrupt death that breaks a
        ``ProcessPoolExecutor``.  Fires once unless ``kill_every_time``.
    delay_seconds:
        Sleep this long before running every chunk, to widen race windows
        (cancel-vs-completion, deadline expiry) without flaky sleeps in
        tests.
    corrupt_chunk:
        Corrupt the *reply* of the Nth chunk (1-based, fires once) — the
        chunk computes normally, then its payload is damaged on the way
        out, modelling a torn reply rather than a crashed worker.
    """

    kill_after_chunks: Optional[int] = None
    kill_every_time: bool = False
    kill_exit_code: int = 17
    delay_seconds: float = 0.0
    corrupt_chunk: Optional[int] = None

    def wrap(self, task: Callable[[Any, Any], Any]) -> "FaultyTask":
        """The hook :meth:`PersistentPool.submit` calls on every task."""
        return FaultyTask(plan=self, task=task)


@dataclass
class FaultyTask:
    """Picklable wrapper that applies a :class:`FaultPlan` around a task.

    ``task`` must be a module-level callable (the pool already requires
    this), so the wrapper pickles as plan fields plus a reference.
    """

    plan: FaultPlan
    task: Callable[[Any, Any], Any] = field(default=None)  # type: ignore[assignment]

    def __call__(self, state: Any, chunk: Any) -> Any:
        plan = self.plan
        proxy = _worker_proxy()
        sequence = _next_chunk(proxy)
        if plan.delay_seconds:
            time.sleep(plan.delay_seconds)
        if (
            plan.kill_after_chunks is not None
            and sequence >= plan.kill_after_chunks
            and (plan.kill_every_time or _claim(proxy, _KILL_FIRED_KEY))
        ):
            # The real thing, not an exception: an OOM-killed or segfaulted
            # worker gives the parent no goodbye either.
            os._exit(plan.kill_exit_code)
        reply = self.task(state, chunk)
        if (
            plan.corrupt_chunk is not None
            and sequence >= plan.corrupt_chunk
            and _claim(proxy, _CORRUPT_FIRED_KEY)
        ):
            reply = _corrupt_reply(reply)
        return reply


def truncate_file(path, keep_fraction: float = 0.5) -> None:
    """Truncate ``path`` in place to a fraction of its size (a torn write)."""
    path = Path(path)
    size = path.stat().st_size
    with path.open("r+b") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))


def flip_byte(path, offset: int = -1) -> None:
    """XOR one byte of ``path`` in place (bit rot; negative offsets from end)."""
    path = Path(path)
    payload = bytearray(path.read_bytes())
    payload[offset] ^= 0xFF
    path.write_bytes(bytes(payload))
