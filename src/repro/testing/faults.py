"""Deterministic fault injection for the serving stack.

The chaos suite (``tests/test_fault_tolerance.py``) needs to kill workers,
delay replies, and corrupt payloads *mid-batch*, reproducibly, without
monkeypatching pool internals.  The seam is
:attr:`~repro.index.pool.PersistentPool.faults`: when set to a
:class:`FaultPlan`, every task the pool submits is wrapped in a
:class:`FaultyTask` that consults the plan on the worker side before and
after running the real task.

Workers coordinate through the pool's manager dict (the one channel that
already exists): a global chunk counter and fired-once flags live under
string keys — state payloads are keyed by integer id, so the namespaces
cannot collide.  The counter survives worker respawns because the manager
process does, which is exactly what makes "kill the worker handling chunk
N, once" deterministic across the recovery.

File-level faults (:func:`truncate_file`, :func:`flip_byte`) corrupt saved
artifacts in place for the artifact-hardening tests; they operate on real
files produced by real ``save`` calls, not synthetic fixtures.

Socket-frame faults (``corrupt_frame`` / ``kill_connection_after`` /
``slow_frame``) drive the ``repro.remote`` shard service: the shard server
consults :meth:`FaultPlan.frame_faults` before sending each outbound frame
and damages the bytes, hard-closes the connection, or stalls past the
client's read deadline — the three socket failure modes the scatter/gather
client must survive without ever serving a wrong answer.  Frame sequence
numbers are per-server-process (workers are single-connection), so the
schedule is deterministic without any cross-process coordination.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional

__all__ = ["FaultPlan", "FaultyTask", "truncate_file", "flip_byte"]

#: Manager-dict keys for cross-worker fault coordination.  String keys:
#: the pool's state payloads use integer ids, so these can never collide.
_CHUNK_COUNTER_KEY = "__fault_chunk_counter__"
_KILL_FIRED_KEY = "__fault_kill_fired__"
_CORRUPT_FIRED_KEY = "__fault_corrupt_fired__"


def _worker_proxy() -> Any:
    """The manager-dict proxy installed in this worker process."""
    from repro.index import pool as pool_module

    return pool_module._WORKER_PROXY


def _next_chunk(proxy: Any) -> int:
    """Advance and return the global 1-based chunk sequence number."""
    count = proxy.get(_CHUNK_COUNTER_KEY, 0) + 1
    proxy[_CHUNK_COUNTER_KEY] = count
    return count


def _claim(proxy: Any, key: str) -> bool:
    """Fire-once latch: ``True`` for exactly the first claimant (best effort)."""
    if proxy.get(key):
        return False
    proxy[key] = True
    return True


def _corrupt_reply(reply: Any) -> Any:
    """Damage a reply payload the way a torn pipe read would.

    Refine replies are ``[(key, ndarray), ...]``: the first array loses its
    last element, so the parent's length validation must catch it.  Other
    list payloads lose their last entry; anything else is replaced by
    ``None``.  Every shape is detectably wrong — corruption must never
    masquerade as a valid result.
    """
    if isinstance(reply, list) and reply:
        head = reply[0]
        if isinstance(head, tuple) and len(head) == 2:
            key, values = head
            return [(key, values[:-1])] + list(reply[1:])
        return list(reply[:-1])
    return None


@dataclass
class FaultPlan:
    """A deterministic schedule of injected failures for one pool.

    Parameters
    ----------
    kill_after_chunks:
        Kill the worker process about to run the Nth chunk (1-based,
        counted across all workers and submissions via the manager), by
        ``os._exit`` — the abrupt death that breaks a
        ``ProcessPoolExecutor``.  Fires once unless ``kill_every_time``.
    delay_seconds:
        Sleep this long before running every chunk, to widen race windows
        (cancel-vs-completion, deadline expiry) without flaky sleeps in
        tests.
    corrupt_chunk:
        Corrupt the *reply* of the Nth chunk (1-based, fires once) — the
        chunk computes normally, then its payload is damaged on the way
        out, modelling a torn reply rather than a crashed worker.
    corrupt_frame:
        Bit-flip the payload of the Nth outbound protocol frame a
        ``repro.remote`` shard server sends (1-based, fires once) — the
        client's checksum must reject it as a typed
        :class:`~repro.exceptions.RemoteProtocolError`, never decode it.
    kill_connection_after:
        Hard-close the shard server's client socket instead of sending the
        Nth outbound frame (fires once) — the mid-reply connection death
        that leaves the client holding a short read.
    slow_frame:
        Sleep :attr:`slow_frame_seconds` before sending the Nth outbound
        frame (fires once) — a peer slow enough to blow the client's read
        deadline without ever failing.
    """

    kill_after_chunks: Optional[int] = None
    kill_every_time: bool = False
    kill_exit_code: int = 17
    delay_seconds: float = 0.0
    corrupt_chunk: Optional[int] = None
    corrupt_frame: Optional[int] = None
    kill_connection_after: Optional[int] = None
    slow_frame: Optional[int] = None
    slow_frame_seconds: float = 0.5
    #: Fire-once latches for the frame faults (server-process local).
    _frame_fired: set = field(default_factory=set, repr=False, compare=False)

    def wrap(self, task: Callable[[Any, Any], Any]) -> "FaultyTask":
        """The hook :meth:`PersistentPool.submit` calls on every task."""
        return FaultyTask(plan=self, task=task)

    def frame_faults(self, sequence: int) -> set:
        """Fault actions for the ``sequence``-th outbound frame (1-based).

        Returns a subset of ``{"slow", "kill", "corrupt"}``; each action
        fires exactly once per plan instance, at the first frame whose
        sequence number reaches its threshold.  The shard server applies
        ``slow`` (sleep) first, then ``kill`` (hard close, frame never
        sent), then ``corrupt`` (damage the encoded bytes) — so a plan
        combining them behaves deterministically.
        """
        actions = set()
        for action, threshold in (
            ("slow", self.slow_frame),
            ("kill", self.kill_connection_after),
            ("corrupt", self.corrupt_frame),
        ):
            if (
                threshold is not None
                and sequence >= threshold
                and action not in self._frame_fired
            ):
                self._frame_fired.add(action)
                actions.add(action)
        return actions

    def to_frame_payload(self) -> dict:
        """JSON-serializable frame/chunk fault fields (for a server CLI)."""
        payload = {
            "kill_after_chunks": self.kill_after_chunks,
            "delay_seconds": self.delay_seconds,
            "corrupt_chunk": self.corrupt_chunk,
            "corrupt_frame": self.corrupt_frame,
            "kill_connection_after": self.kill_connection_after,
            "slow_frame": self.slow_frame,
            "slow_frame_seconds": self.slow_frame_seconds,
        }
        return {key: value for key, value in payload.items() if value}


@dataclass
class FaultyTask:
    """Picklable wrapper that applies a :class:`FaultPlan` around a task.

    ``task`` must be a module-level callable (the pool already requires
    this), so the wrapper pickles as plan fields plus a reference.
    """

    plan: FaultPlan
    task: Callable[[Any, Any], Any] = field(default=None)  # type: ignore[assignment]

    def __call__(self, state: Any, chunk: Any) -> Any:
        plan = self.plan
        proxy = _worker_proxy()
        sequence = _next_chunk(proxy)
        if plan.delay_seconds:
            time.sleep(plan.delay_seconds)
        if (
            plan.kill_after_chunks is not None
            and sequence >= plan.kill_after_chunks
            and (plan.kill_every_time or _claim(proxy, _KILL_FIRED_KEY))
        ):
            # The real thing, not an exception: an OOM-killed or segfaulted
            # worker gives the parent no goodbye either.
            os._exit(plan.kill_exit_code)
        reply = self.task(state, chunk)
        if (
            plan.corrupt_chunk is not None
            and sequence >= plan.corrupt_chunk
            and _claim(proxy, _CORRUPT_FIRED_KEY)
        ):
            reply = _corrupt_reply(reply)
        return reply


def truncate_file(path, keep_fraction: float = 0.5) -> None:
    """Truncate ``path`` in place to a fraction of its size (a torn write)."""
    path = Path(path)
    size = path.stat().st_size
    with path.open("r+b") as handle:
        handle.truncate(max(1, int(size * keep_fraction)))


def flip_byte(path, offset: int = -1) -> None:
    """XOR one byte of ``path`` in place (bit rot; negative offsets from end)."""
    path = Path(path)
    payload = bytearray(path.read_bytes())
    payload[offset] ^= 0xFF
    path.write_bytes(bytes(payload))
