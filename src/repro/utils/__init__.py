"""Shared utilities: seeding, argument validation and timing helpers."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, ThroughputMeter
from repro.utils.validation import (
    check_positive_int,
    check_non_negative_int,
    check_probability,
    check_fraction,
    check_in_choices,
    check_array_2d,
    check_non_empty,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "ThroughputMeter",
    "check_positive_int",
    "check_non_negative_int",
    "check_probability",
    "check_fraction",
    "check_in_choices",
    "check_array_2d",
    "check_non_empty",
]
