"""Low-level filesystem helpers shared across layers.

Lives in :mod:`repro.utils` so both the distance layer
(:meth:`~repro.distances.context.DistanceStore.save`) and the index
artifact writer (:mod:`repro.index.artifacts`) use one implementation of
the crash-safety pattern instead of drifting copies.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Iterator

__all__ = ["atomic_replace", "atomic_write_bytes"]


@contextmanager
def atomic_replace(path) -> Iterator[Path]:
    """Yield a temporary sibling path that replaces ``path`` on success.

    The body writes to the yielded temp path; on normal exit the temp file
    is atomically renamed over ``path``, so a crash (or an exception) can
    never leave a truncated file behind and an existing ``path`` survives a
    failed write untouched.  The temp file is always cleaned up.
    """
    path = Path(path)
    tmp_path = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    try:
        yield tmp_path
        os.replace(tmp_path, path)
    finally:
        if tmp_path.exists():
            tmp_path.unlink()


def atomic_write_bytes(path, payload: bytes) -> None:
    """Atomically write ``payload`` to ``path`` (temp file + rename)."""
    with atomic_replace(path) as tmp_path:
        tmp_path.write_bytes(payload)
