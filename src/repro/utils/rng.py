"""Random-number-generation helpers.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Normalising
through :func:`ensure_rng` keeps experiments reproducible bit-for-bit while
letting interactive users not care about seeding at all.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]


def ensure_rng(seed: RngLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator (returned unchanged).

    Raises
    ------
    TypeError
        If ``seed`` is not one of the accepted types.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer)):
        return np.random.default_rng(int(seed))
    raise TypeError(
        "seed must be None, an int, or a numpy Generator, got "
        f"{type(seed).__name__}"
    )


def spawn_rngs(seed: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` independent child generators from ``seed``.

    Children are created through ``Generator.spawn`` so that streams do not
    overlap regardless of how many random numbers each child consumes.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    parent = ensure_rng(seed)
    return list(parent.spawn(count))
