"""Lightweight timing utilities used by the experiment harness.

The paper reports costs in *numbers of exact distance computations*, which is
hardware independent, but also quotes throughput (distances evaluated per
second) to translate counts into wall-clock time.  :class:`ThroughputMeter`
reproduces that translation on the current machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional


class Stopwatch:
    """A simple start/stop stopwatch accumulating elapsed wall-clock time.

    Examples
    --------
    >>> watch = Stopwatch()
    >>> with watch:
    ...     _ = sum(range(1000))
    >>> watch.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: Optional[float] = None

    def start(self) -> "Stopwatch":
        """Start (or restart) timing; returns self for chaining."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop timing and return the total elapsed time so far."""
        if self._started_at is None:
            raise RuntimeError("Stopwatch.stop() called before start()")
        self.elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self.elapsed

    def reset(self) -> None:
        """Reset the accumulated time to zero."""
        self.elapsed = 0.0
        self._started_at = None

    @property
    def running(self) -> bool:
        """Whether the stopwatch is currently running."""
        return self._started_at is not None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


@dataclass
class ThroughputMeter:
    """Measure how many times per second a callable can be evaluated.

    The paper quotes "15 shape context distances per second" and "60 DTW
    distances per second" on a 2005-era Opteron; this class produces the
    equivalent figures on the current machine so that distance-count results
    can be converted into per-query processing time.
    """

    name: str = "operation"
    calls: int = 0
    seconds: float = field(default=0.0)

    def measure(self, func: Callable[[], object], repetitions: int) -> float:
        """Call ``func`` ``repetitions`` times and return calls per second."""
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        start = time.perf_counter()
        for _ in range(repetitions):
            func()
        elapsed = time.perf_counter() - start
        self.calls += repetitions
        self.seconds += elapsed
        return self.per_second

    @property
    def per_second(self) -> float:
        """Observed throughput in calls per second (0.0 before any call)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.calls / self.seconds

    def time_for(self, n_calls: int) -> float:
        """Estimated wall-clock seconds to perform ``n_calls`` evaluations."""
        rate = self.per_second
        if rate <= 0.0:
            raise RuntimeError("ThroughputMeter has no measurements yet")
        return n_calls / rate
