"""Argument-validation helpers.

These helpers raise :class:`repro.exceptions.ConfigurationError` with a
descriptive message.  Centralising the checks keeps the constructors of the
public classes short and the error messages uniform.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

import numpy as np

from repro.exceptions import ConfigurationError


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it as ``int``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is a non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ConfigurationError(
            f"{name} must be a non-negative integer, got {value!r}"
        )
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ConfigurationError(f"{name} must be a number in [0, 1], got {value!r}")
    if not 0.0 <= value <= 1.0:
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_fraction(value: Any, name: str) -> float:
    """Validate that ``value`` lies in the half-open interval (0, 1]."""
    value = check_probability(value, name)
    if value == 0.0:
        raise ConfigurationError(f"{name} must be strictly positive, got 0")
    return value


def check_in_choices(value: Any, name: str, choices: Iterable[Any]) -> Any:
    """Validate that ``value`` is one of ``choices``."""
    choices = list(choices)
    if value not in choices:
        raise ConfigurationError(f"{name} must be one of {choices}, got {value!r}")
    return value


def check_non_empty(seq: Sequence[Any], name: str) -> Sequence[Any]:
    """Validate that ``seq`` contains at least one element."""
    if len(seq) == 0:
        raise ConfigurationError(f"{name} must not be empty")
    return seq


def check_array_2d(array: Any, name: str) -> np.ndarray:
    """Coerce ``array`` to a 2D float array, raising if that is impossible."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim == 1:
        arr = arr.reshape(-1, 1)
    if arr.ndim != 2:
        raise ConfigurationError(f"{name} must be a 1D or 2D array, got ndim={arr.ndim}")
    if arr.size == 0:
        raise ConfigurationError(f"{name} must not be empty")
    return arr
