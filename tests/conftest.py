"""Shared fixtures for the test suite.

Expensive objects (trained models, digit images, ground truth) are
session-scoped so that the many tests exercising them do not retrain or
regenerate them repeatedly.
"""

from __future__ import annotations

import os
import sys

import numpy as np
import pytest

# Make the package importable even when it has not been pip-installed
# (e.g. running pytest straight from a source checkout).
_SRC = os.path.join(os.path.dirname(__file__), "..", "src")
if os.path.isdir(_SRC) and _SRC not in sys.path:
    sys.path.insert(0, os.path.abspath(_SRC))

from repro import (  # noqa: E402  (import after sys.path tweak)
    BoostMapTrainer,
    ConstrainedDTW,
    Dataset,
    L2Distance,
    RetrievalSplit,
    TrainingConfig,
    make_gaussian_clusters,
    make_timeseries_dataset,
)
from repro.core.trainer import build_training_tables  # noqa: E402
from repro.datasets.digits import DigitImageGenerator  # noqa: E402
from repro.retrieval.knn import ground_truth_neighbors  # noqa: E402


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def l2():
    return L2Distance()


@pytest.fixture(scope="session")
def gaussian_dataset():
    """A small Euclidean dataset with clear cluster structure."""
    return make_gaussian_clusters(n_objects=150, n_clusters=5, n_dims=6, seed=11)


@pytest.fixture(scope="session")
def gaussian_split(gaussian_dataset):
    """Database / query split of the Gaussian dataset."""
    return RetrievalSplit.from_dataset(gaussian_dataset, n_queries=30, seed=12)


@pytest.fixture(scope="session")
def tiny_training_config():
    """A very small but functional training configuration."""
    return TrainingConfig(
        n_candidates=40,
        n_training_objects=40,
        n_triples=600,
        n_rounds=10,
        classifiers_per_round=25,
        intervals_per_candidate=4,
        kmax=10,
        seed=7,
    )


@pytest.fixture(scope="session")
def trained_qs(gaussian_split, tiny_training_config, l2):
    """A trained query-sensitive (Se-QS) model on the Gaussian split."""
    trainer = BoostMapTrainer(l2, gaussian_split.database, tiny_training_config)
    return trainer.train()


@pytest.fixture(scope="session")
def trained_qi(gaussian_split, tiny_training_config, l2):
    """A trained query-insensitive (Ra-QI / original BoostMap) model."""
    config = tiny_training_config.with_overrides(
        query_sensitive=False, sampler="random", seed=8
    )
    trainer = BoostMapTrainer(l2, gaussian_split.database, config)
    return trainer.train()


@pytest.fixture(scope="session")
def gaussian_ground_truth(gaussian_split, l2):
    """Exact 10-NN ground truth for the Gaussian split."""
    return ground_truth_neighbors(
        l2, gaussian_split.database, gaussian_split.queries, k_max=10
    )


@pytest.fixture(scope="session")
def shared_tables(gaussian_split, l2):
    """Precomputed training tables shared by trainer tests."""
    return build_training_tables(
        l2, gaussian_split.database, n_candidates=40, n_training_objects=40, seed=21
    )


@pytest.fixture(scope="session")
def digit_images():
    """A small bank of synthetic digit images (4 per class)."""
    generator = DigitImageGenerator()
    rng = np.random.default_rng(3)
    images = {}
    for digit in range(10):
        images[digit] = [generator.render(digit, rng=rng) for _ in range(4)]
    return images


@pytest.fixture(scope="session")
def timeseries_split():
    """A small time-series database/query split."""
    database, queries = make_timeseries_dataset(
        n_database=80, n_queries=15, n_seeds=8, length=40, n_dims=2, seed=5
    )
    return RetrievalSplit(database=database, queries=queries, name="ts-test")


@pytest.fixture(scope="session")
def dtw():
    return ConstrainedDTW()
