"""Async serving semantics: submit/stream/aquery_many, backpressure, mmap.

The contract under test: the pipelined serving paths are *bit-identical*
to the blocking ``query_many`` — same neighbors, same distances, same
per-query exact-evaluation accounting — while overlapping parent-side
embed/filter with pooled refine (pool launched once), honouring the
``max_in_flight`` backpressure bound, and supporting cancellation of
pending tickets.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import CancelledError

import numpy as np
import pytest

import time

from repro import (
    EmbeddingIndex,
    IndexConfig,
    L2Distance,
    PersistentPool,
    RetrievalSplit,
    TrainingConfig,
    make_gaussian_clusters,
)
from repro.distances.context import DistanceContext
from repro.exceptions import RetrievalError


def _slow_echo(_state, chunk):
    time.sleep(0.2)
    return chunk


def _echo(_state, chunk):
    return chunk


@pytest.fixture(scope="module")
def serve_split():
    dataset = make_gaussian_clusters(n_objects=90, n_clusters=4, n_dims=5, seed=3)
    return RetrievalSplit.from_dataset(dataset, n_queries=14, seed=4)


@pytest.fixture(scope="module")
def serve_config():
    return IndexConfig(
        training=TrainingConfig(
            n_candidates=10,
            n_training_objects=24,
            n_triples=80,
            n_rounds=5,
            classifiers_per_round=10,
            seed=17,
        ),
        backend="filter_refine",
        n_jobs=None,
    )


def _build(serve_split, serve_config, **overrides):
    config = serve_config.with_overrides(**overrides) if overrides else serve_config
    return EmbeddingIndex.build(L2Distance(), serve_split.database, config)


def _assert_same_results(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
        assert np.array_equal(a.neighbor_distances, b.neighbor_distances)
        assert (
            a.refine_distance_computations == b.refine_distance_computations
        )
        assert (
            a.embedding_distance_computations == b.embedding_distance_computations
        )


class TestStreamSemantics:
    def test_submission_order_bit_identical(self, serve_split, serve_config):
        queries = list(serve_split.queries)
        with _build(serve_split, serve_config) as reference:
            blocking = reference.query_many(queries, k=3, p=12)
        with _build(serve_split, serve_config) as index:
            stream = index.stream(queries, k=3, p=12, order="submission")
            pairs = list(stream)
        assert [position for position, _ in pairs] == list(range(len(queries)))
        _assert_same_results([r for _, r in pairs], blocking)

    def test_completion_order_covers_all_queries(self, serve_split, serve_config):
        queries = list(serve_split.queries)
        with _build(serve_split, serve_config) as reference:
            blocking = reference.query_many(queries, k=3, p=12)
        with _build(serve_split, serve_config, n_jobs=2) as index:
            pairs = list(index.stream(queries, k=3, p=12, order="completion"))
        assert sorted(position for position, _ in pairs) == list(range(len(queries)))
        by_position = dict(pairs)
        _assert_same_results(
            [by_position[i] for i in range(len(queries))], blocking
        )

    def test_backpressure_bounds_in_flight(self, serve_split, serve_config):
        queries = list(serve_split.queries)
        with _build(serve_split, serve_config) as index:
            stream = index.stream(
                queries, k=3, p=12, max_in_flight=2, order="submission"
            )
            results = [r for _, r in stream]
        assert len(results) == len(queries)
        assert stream.max_pending_seen <= 2
        assert stream.completed == len(queries)

    def test_invalid_stream_arguments(self, serve_split, serve_config):
        with _build(serve_split, serve_config) as index:
            with pytest.raises(RetrievalError):
                index.stream([], k=3, p=12, order="sideways")
            with pytest.raises(RetrievalError):
                index.stream([], k=3, p=12, max_in_flight=0)
            with pytest.raises(RetrievalError):
                # filter backends need p, exactly like the blocking path
                index.submit(serve_split.queries[0], k=3)

    def test_pool_launched_once_across_blocking_and_stream(
        self, serve_split, serve_config
    ):
        queries = list(serve_split.queries)
        with _build(serve_split, serve_config, n_jobs=2) as index:
            blocking = index.query_many(queries[:7], k=3, p=12, n_jobs=2)
            pairs = list(index.stream(queries[:7], k=3, p=12, order="submission"))
            assert index.pool is not None
            assert index.pool.launches == 1
            # The stream served the same queries from the warm store: zero
            # fresh refine evaluations the second time around.
            assert all(
                r.refine_distance_computations == 0 for _, r in pairs
            )
            assert [
                r.neighbor_indices.tolist() for _, r in pairs
            ] == [r.neighbor_indices.tolist() for r in blocking]


class TestTickets:
    def test_submit_then_result(self, serve_split, serve_config):
        queries = list(serve_split.queries)
        with _build(serve_split, serve_config) as reference:
            blocking = reference.query_many(queries[:3], k=2, p=10)
        with _build(serve_split, serve_config) as index:
            tickets = [index.submit(q, k=2, p=10) for q in queries[:3]]
            results = [t.result() for t in tickets]
        _assert_same_results(results, blocking)

    def test_cancel_pending_ticket(self, serve_split, serve_config):
        queries = list(serve_split.queries)
        with _build(serve_split, serve_config) as index:
            keep = index.submit(queries[0], k=2, p=10)
            drop = index.submit(queries[1], k=2, p=10)
            evaluations_before = index.distance_evaluations
            assert drop.cancel() is True
            assert drop.cancelled
            with pytest.raises(CancelledError):
                drop.result()
            # Cancelling twice (or after completion) reports failure.
            assert drop.cancel() is False
            result = keep.result()
            assert result.refine_distance_computations > 0
            # The cancelled ticket's refine work was never evaluated: only
            # the kept ticket's evaluations were charged.
            assert (
                index.distance_evaluations - evaluations_before
                == result.refine_distance_computations
            )

    def test_cancel_completed_ticket_fails(self, serve_split, serve_config):
        with _build(serve_split, serve_config) as index:
            ticket = index.submit(serve_split.queries[0], k=2, p=10)
            ticket.result()
            assert ticket.cancel() is False
            assert ticket.done()

    def test_duplicate_queries_share_in_flight_work(self, serve_split, serve_config):
        query = serve_split.queries[0]
        with _build(serve_split, serve_config) as reference:
            blocking = reference.query_many([query, query], k=2, p=10)
        with _build(serve_split, serve_config) as index:
            first = index.submit(query, k=2, p=10)
            second = index.submit(query, k=2, p=10)
            results = [first.result(), second.result()]
        _assert_same_results(results, blocking)
        # The duplicate deferred onto the first ticket's in-flight pairs:
        # its refine was free, exactly like query_many's dedup.
        assert results[1].refine_distance_computations == 0


class TestFailureIsolation:
    def test_partial_pool_cancel_still_delivers_results(self):
        # One worker, three chunks: by the time cancel() is attempted the
        # first chunk is running, so the cancel must fail — and the job
        # must still deliver every chunk result afterwards (a failed
        # cancel may not strand the queued chunks).
        with PersistentPool(1) as pool:
            job = pool.submit(_slow_echo, None, [1, 2, 3])
            time.sleep(0.05)  # let chunk 1 start on the single worker
            cancelled = job.cancel()
            assert cancelled is False
            assert job.results() == [1, 2, 3]

    def test_state_eviction_deferred_while_job_in_flight(self):
        # A submitted (non-blocking) job's chunks can sit queued while
        # other callers publish enough distinct states to evict its state
        # from the LRU.  The manager-side payload must survive until the
        # job finishes, or queued chunks would crash on the lookup.
        from repro.index.pool import MAX_CACHED_STATES

        with PersistentPool(1) as pool:
            job = pool.submit(_slow_echo, {"tag": "A"}, [1, 2], signature="sig-A")
            state_id = job._state_id
            fillers = [
                pool.submit(_echo, {"tag": i}, [i], signature=f"sig-{i}")
                for i in range(MAX_CACHED_STATES + 1)
            ]
            # sig-A is out of the LRU now, but its payload must persist.
            assert state_id in pool._proxy
            assert job.results() == [1, 2]
            assert [f.results() for f in fillers] == [[i] for i in range(len(fillers))]
            # With the job done, the deferred eviction finally lands.
            assert state_id not in pool._proxy

    def test_force_released_resolution_does_not_poison_dependents(self):
        # Ticket A reserves pairs, ticket B defers onto them, then A dies
        # (force release, the serving error path).  B must still complete:
        # it falls back to evaluating the abandoned pairs itself.
        objs = [np.array([float(i), 0.0]) for i in range(6)]
        context = DistanceContext(L2Distance(), objs)
        in_flight = {}
        first = context.resolve_distances(objs[0], [1, 2, 3], in_flight=in_flight)
        second = context.resolve_distances(objs[0], [1, 2, 4], in_flight=in_flight)
        assert len(second.deferred) == 2  # pairs (0,1) and (0,2) owned by first
        context.cancel_distances(first, in_flight=in_flight, force=True)
        fresh = np.asarray(
            [L2Distance()(objs[0], objs[j]) for j in second.miss_targets]
        )
        values, spent = context.complete_distances(
            second, fresh, in_flight=in_flight
        )
        expected = np.asarray([L2Distance()(objs[0], objs[j]) for j in (1, 2, 4)])
        assert np.array_equal(values, expected)
        # The two abandoned pairs were evaluated as fallbacks and must be
        # charged: spent = own miss + 2 fallback evaluations.
        assert spent == len(second.miss_targets) + 2
        assert spent == context.distance_evaluations
        assert not in_flight


class TestAqueryMany:
    @pytest.mark.parametrize("backend", ["filter_refine", "sharded", "brute_force"])
    def test_bit_identical_to_query_many(self, serve_split, serve_config, backend):
        queries = list(serve_split.queries)
        p = None if backend == "brute_force" else 12
        with _build(serve_split, serve_config, backend=backend) as reference:
            blocking = reference.query_many(queries, k=3, p=p)
        with _build(serve_split, serve_config, backend=backend) as index:
            streamed = asyncio.run(index.aquery_many(queries, k=3, p=p))
        _assert_same_results(streamed, blocking)

    def test_aquery_on_warm_reopened_index(self, tmp_path, serve_split, serve_config):
        queries = list(serve_split.queries)
        with _build(serve_split, serve_config) as index:
            blocking = index.query_many(queries, k=3, p=12)
            index.save(tmp_path / "artifact")
        with EmbeddingIndex.open(
            tmp_path / "artifact", serve_split.database
        ) as reopened:
            streamed = asyncio.run(reopened.aquery_many(queries, k=3, p=12))
            for warm, cold in zip(streamed, blocking):
                assert np.array_equal(warm.neighbor_indices, cold.neighbor_indices)
                assert np.array_equal(
                    warm.neighbor_distances, cold.neighbor_distances
                )
            # Warm store: the stream refined entirely from cached pairs.
            assert all(r.refine_distance_computations == 0 for r in streamed)


class TestMmapStore:
    def test_uncompressed_artifact_opens_mapped(self, tmp_path, serve_split, serve_config):
        queries = list(serve_split.queries)
        with _build(serve_split, serve_config) as index:
            blocking = index.query_many(queries, k=3, p=12)
            index.save(tmp_path / "artifact", compress_store=False)
        with EmbeddingIndex.open(
            tmp_path / "artifact", serve_split.database, store_mmap_mode="r"
        ) as reopened:
            blocks = reopened.context.store._blocks
            assert blocks, "expected dense blocks in the persisted store"
            assert any(
                isinstance(block.values, np.memmap)
                or isinstance(getattr(block.values, "base", None), np.memmap)
                for block in blocks
            )
            warm = reopened.query_many(queries, k=3, p=12)
        for mapped, cold in zip(warm, blocking):
            assert np.array_equal(mapped.neighbor_indices, cold.neighbor_indices)
            assert np.array_equal(mapped.neighbor_distances, cold.neighbor_distances)
            # The mapped store serves the pairs without re-evaluating them.
            assert mapped.refine_distance_computations == 0

    def test_compressed_store_falls_back_with_warning(
        self, tmp_path, serve_split, serve_config
    ):
        with _build(serve_split, serve_config) as index:
            index.query_many(list(serve_split.queries)[:4], k=3, p=12)
            index.save(tmp_path / "artifact")  # compressed (default)
        with pytest.warns(RuntimeWarning, match="mmap"):
            reopened = EmbeddingIndex.open(
                tmp_path / "artifact", serve_split.database, store_mmap_mode="r"
            )
        with reopened:
            results = reopened.query_many(list(serve_split.queries)[:4], k=3, p=12)
            assert all(r.refine_distance_computations == 0 for r in results)
