"""Tests for the batch distance engine.

Property tests asserting that the batch protocol
(``compute_many``/``compute_pairs``) agrees with the scalar ``compute`` to
1e-9 for every distance measure — including the asymmetric KL family, banded
DTW edge cases (unequal lengths, band clamping, unconstrained bands) and
weighted edit distances with asymmetric substitution tables — plus exactness
of :class:`~repro.distances.base.CountingDistance` accounting through every
batch path, the matrix builders (serial and ``n_jobs`` parallel), the batched
``embed_many`` implementations, and the ``argpartition`` filter cut.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.trainer import build_training_tables
from repro.datasets.base import Dataset
from repro.distances import (
    CachedDistance,
    ChamferDistance,
    ConstrainedDTW,
    CountingDistance,
    EditDistance,
    FunctionDistance,
    HausdorffDistance,
    JensenShannonDistance,
    KLDivergence,
    L1Distance,
    L2Distance,
    LpDistance,
    QuerySensitiveL1,
    SymmetricKL,
    WeightedEditDistance,
    WeightedL1Distance,
    cross_distances,
    pairwise_distances,
)
from repro.embeddings.composite import CompositeEmbedding
from repro.embeddings.fastmap import build_fastmap_embedding
from repro.embeddings.lipschitz import build_lipschitz_embedding
from repro.embeddings.pivot import PivotEmbedding
from repro.embeddings.reference import ReferenceEmbedding
from repro.retrieval.filter_refine import FilterRefineRetriever, _stable_smallest

ATOL = 1e-9


def assert_batch_matches_scalar(distance, x, ys):
    """compute_many and compute_pairs must match the scalar loop to 1e-9."""
    scalar = np.array([distance.compute(x, y) for y in ys], dtype=float)
    many = np.asarray(distance.compute_many(x, ys), dtype=float)
    np.testing.assert_allclose(many, scalar, atol=ATOL, rtol=0.0)
    pairs = np.asarray(distance.compute_pairs([x] * len(ys), ys), dtype=float)
    np.testing.assert_allclose(pairs, scalar, atol=ATOL, rtol=0.0)


# --------------------------------------------------------------------------- #
# Vector measures                                                             #
# --------------------------------------------------------------------------- #


class TestVectorBatchKernels:
    @pytest.mark.parametrize(
        "distance",
        [L1Distance(), L2Distance(), LpDistance(3.0), LpDistance(np.inf)],
        ids=["l1", "l2", "l3", "linf"],
    )
    def test_lp_family(self, distance, rng):
        x = rng.normal(size=7)
        ys = [rng.normal(size=7) for _ in range(11)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_weighted_l1(self, rng):
        distance = WeightedL1Distance(rng.random(5) + 0.1)
        x = rng.normal(size=5)
        ys = [rng.normal(size=5) for _ in range(9)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_query_sensitive_l1_uses_first_argument_weights(self, rng):
        distance = QuerySensitiveL1(lambda q: np.abs(q) + 0.5)
        x = rng.normal(size=6)
        ys = [rng.normal(size=6) for _ in range(8)]
        assert_batch_matches_scalar(distance, x, ys)
        # Asymmetry: swapping arguments must change the result, and the
        # batch path must follow the scalar convention (weights from arg 1).
        y = ys[0]
        assert distance.compute(x, y) != pytest.approx(distance.compute(y, x))

    def test_legacy_batch_alias_matches_compute_many(self, rng):
        weighted = WeightedL1Distance(rng.random(4) + 0.1)
        sensitive = QuerySensitiveL1(lambda q: np.abs(q) + 1.0)
        x = rng.normal(size=4)
        others = rng.normal(size=(6, 4))
        np.testing.assert_array_equal(
            weighted.batch(x, others), weighted.compute_many(x, others)
        )
        np.testing.assert_array_equal(
            sensitive.batch(x, others), sensitive.compute_many(x, others)
        )

    def test_empty_batches(self, rng):
        x = rng.random(4)
        for distance in [L2Distance(), WeightedL1Distance(np.ones(4)), KLDivergence()]:
            assert distance.compute_many(x, []).shape == (0,)
            assert distance.compute_pairs([], []).shape == (0,)


class TestDivergenceBatchKernels:
    @pytest.mark.parametrize(
        "distance",
        [KLDivergence(), SymmetricKL(), JensenShannonDistance()],
        ids=["kl", "symmetric_kl", "jensen_shannon"],
    )
    def test_matches_scalar(self, distance, rng):
        x = rng.random(10) + 1e-3
        ys = [rng.random(10) + 1e-3 for _ in range(7)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_kl_asymmetry_preserved_in_batch(self, rng):
        kl = KLDivergence()
        x = rng.random(6) + 0.05
        ys = [rng.random(6) + 0.05 for _ in range(5)]
        forward = kl.compute_many(x, ys)
        backward = np.array([kl.compute(y, x) for y in ys])
        assert not np.allclose(forward, backward)


class TestPointSetBatchKernels:
    @pytest.mark.parametrize("directed", [False, True], ids=["symmetric", "directed"])
    def test_chamfer(self, directed, rng):
        distance = ChamferDistance(directed=directed)
        x = rng.normal(size=(6, 2))
        ys = [rng.normal(size=(rng.integers(1, 10), 2)) for _ in range(9)]
        assert_batch_matches_scalar(distance, x, ys)

    @pytest.mark.parametrize("directed", [False, True], ids=["symmetric", "directed"])
    def test_hausdorff(self, directed, rng):
        distance = HausdorffDistance(directed=directed)
        x = rng.normal(size=(5, 3))
        ys = [rng.normal(size=(rng.integers(1, 8), 3)) for _ in range(9)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_single_point_sets(self, rng):
        distance = HausdorffDistance()
        x = rng.normal(size=(1, 2))
        ys = [rng.normal(size=(1, 2)), rng.normal(size=(4, 2))]
        assert_batch_matches_scalar(distance, x, ys)


# --------------------------------------------------------------------------- #
# Sequence measures (DP kernels)                                              #
# --------------------------------------------------------------------------- #


class TestDTWBatchKernel:
    def test_mixed_lengths(self, rng):
        distance = ConstrainedDTW()
        x = rng.normal(size=(20, 2))
        ys = [rng.normal(size=(int(rng.integers(1, 40)), 2)) for _ in range(15)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_band_clamping_with_unequal_lengths(self, rng):
        # band_width=0 forces the band to widen to |n - m| per pair.
        distance = ConstrainedDTW(band_width=0)
        x = rng.normal(size=(12, 1))
        ys = [rng.normal(size=(m, 1)) for m in (1, 3, 12, 25)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_unconstrained_band(self, rng):
        distance = ConstrainedDTW(band_fraction=None, band_width=None)
        x = rng.normal(size=(9, 2))
        ys = [rng.normal(size=(int(rng.integers(1, 14)), 2)) for _ in range(6)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_narrow_band_rows(self, rng):
        # A tiny fractional band on long series exercises rows where the
        # banded window is much narrower than the full row.
        distance = ConstrainedDTW(band_fraction=0.02)
        x = rng.normal(size=(60, 1))
        ys = [rng.normal(size=(60, 1)) for _ in range(4)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_normalized_variant(self, rng):
        distance = ConstrainedDTW(normalize=True)
        x = rng.normal(size=(10, 1))
        ys = [rng.normal(size=(m, 1)) for m in (2, 10, 17)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_length_one_series(self, rng):
        distance = ConstrainedDTW()
        x = rng.normal(size=(1, 2))
        ys = [rng.normal(size=(m, 2)) for m in (1, 2, 7)]
        assert_batch_matches_scalar(distance, x, ys)


class TestEditBatchKernel:
    def test_strings(self, rng):
        distance = EditDistance()
        alphabet = list("ACGT")
        x = "".join(rng.choice(alphabet, size=15))
        ys = ["".join(rng.choice(alphabet, size=int(rng.integers(0, 25)))) for _ in range(12)]
        assert_batch_matches_scalar(distance, x, ys)

    def test_token_sequences_and_empties(self, rng):
        distance = EditDistance()
        x = ["alpha", "beta", "gamma", "beta"]
        ys = [[], ["beta"], ["alpha", "gamma"], ("beta", "beta", "delta")]
        assert_batch_matches_scalar(distance, x, ys)
        assert distance.compute("", "abc") == 3.0
        assert distance.compute("abc", "") == 3.0
        np.testing.assert_array_equal(distance.compute_many("", ["ab", ""]), [2.0, 0.0])

    def test_weighted_asymmetric_table(self, rng):
        costs = {("A", "B"): 0.25, ("B", "A"): 2.0, ("C", "D"): 0.5}
        distance = WeightedEditDistance(
            costs, insertion_cost=0.8, deletion_cost=1.2, default_substitution=1.5
        )
        alphabet = list("ABCDE")
        x = [str(s) for s in rng.choice(alphabet, size=10)]
        ys = [
            [str(s) for s in rng.choice(alphabet, size=int(rng.integers(0, 16)))]
            for _ in range(10)
        ]
        assert_batch_matches_scalar(distance, x, ys)
        # Asymmetric: (A, B) entry must beat the reversed (B, A) entry.
        assert distance.compute(["A"], ["B"]) == pytest.approx(0.25)
        assert distance.compute(["B"], ["A"]) == pytest.approx(2.0)

    def test_weighted_reversed_lookup(self):
        distance = WeightedEditDistance({("C", "D"): 0.5})
        assert distance.compute(["D"], ["C"]) == pytest.approx(0.5)
        np.testing.assert_allclose(
            distance.compute_many(["D"], [["C"], ["D"], ["E"]]), [0.5, 0.0, 1.0]
        )

    def test_alphabet_registry_grows_across_calls(self):
        distance = WeightedEditDistance({("x", "y"): 0.1})
        assert distance.compute("xy", "yx") == pytest.approx(0.2)
        # New symbols after the table was first built must still resolve.
        assert distance.compute("xz", "zy") > 0.0
        assert distance.compute(["x"], ["y"]) == pytest.approx(0.1)


# --------------------------------------------------------------------------- #
# Wrappers: counting and caching through batch paths                          #
# --------------------------------------------------------------------------- #


class TestWrapperBatchSemantics:
    def test_counting_is_exact_through_batches(self, rng):
        counting = CountingDistance(L2Distance())
        x = rng.normal(size=4)
        ys = [rng.normal(size=4) for _ in range(13)]
        counting.compute_many(x, ys)
        assert counting.calls == 13
        counting.compute_pairs(ys, ys)
        assert counting.calls == 26
        counting.reset()
        for y in ys:
            counting.compute(x, y)
        assert counting.calls == 13

    def test_counting_values_match_scalar(self, rng):
        counting = CountingDistance(ConstrainedDTW())
        x = rng.normal(size=(8, 1))
        ys = [rng.normal(size=(int(rng.integers(2, 12)), 1)) for _ in range(6)]
        assert_batch_matches_scalar(counting, x, ys)

    def test_generic_fallback_through_function_distance(self, rng):
        distance = FunctionDistance(lambda a, b: abs(float(a) - float(b)))
        x = 1.5
        ys = [0.0, 2.0, -3.5]
        assert_batch_matches_scalar(distance, x, ys)

    def test_cached_batch_reuses_entries(self, rng):
        cached = CachedDistance(CountingDistance(L2Distance()), key=id)
        objects = [rng.normal(size=3) for _ in range(6)]
        x = objects[0]
        first = cached.compute_many(x, objects)
        assert cached.misses == 6
        second = cached.compute_many(x, objects)
        np.testing.assert_array_equal(first, second)
        assert cached.misses == 6
        assert cached.hits == 6
        assert cached.base.calls == 6  # misses only
        scalar = np.array([cached.base.base.compute(x, y) for y in objects])
        np.testing.assert_allclose(first, scalar, atol=ATOL, rtol=0.0)


# --------------------------------------------------------------------------- #
# Matrix builders                                                             #
# --------------------------------------------------------------------------- #


def _brute_pairwise(distance, objects, symmetric=True):
    n = len(objects)
    matrix = np.zeros((n, n))
    for i in range(n):
        for j in range(n):
            if symmetric and j < i:
                continue
            matrix[i, j] = distance.compute(objects[i], objects[j])
            if symmetric:
                matrix[j, i] = matrix[i, j]
    return matrix


class TestMatrixBuilders:
    def test_pairwise_matches_brute_force(self, rng, l2):
        objects = [rng.normal(size=5) for _ in range(14)]
        np.testing.assert_allclose(
            pairwise_distances(l2, objects),
            _brute_pairwise(l2, objects),
            atol=ATOL,
            rtol=0.0,
        )

    def test_pairwise_asymmetric(self, rng):
        kl = KLDivergence()
        objects = [rng.random(4) + 0.1 for _ in range(8)]
        result = pairwise_distances(kl, objects, symmetric=False)
        np.testing.assert_allclose(
            result, _brute_pairwise(kl, objects, symmetric=False), atol=ATOL, rtol=0.0
        )
        assert not np.allclose(result, result.T)

    def test_cross_matches_brute_force(self, rng, l2):
        rows = [rng.normal(size=5) for _ in range(6)]
        columns = [rng.normal(size=5) for _ in range(9)]
        expected = np.array(
            [[l2.compute(r, c) for c in columns] for r in rows]
        )
        np.testing.assert_allclose(
            cross_distances(l2, rows, columns), expected, atol=ATOL, rtol=0.0
        )

    def test_counting_matches_seed_semantics(self, rng, l2):
        objects = [rng.normal(size=3) for _ in range(10)]
        counting = CountingDistance(l2)
        pairwise_distances(counting, objects)
        assert counting.calls == 10 * 9 // 2
        counting.reset()
        pairwise_distances(counting, objects, symmetric=False)
        assert counting.calls == 100
        counting.reset()
        cross_distances(counting, objects[:4], objects)
        assert counting.calls == 40

    def test_progress_reaches_total(self, rng, l2):
        objects = [rng.normal(size=3) for _ in range(7)]
        seen = []
        pairwise_distances(l2, objects, progress=lambda done, total: seen.append((done, total)))
        assert seen[-1] == (7, 7)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    @pytest.mark.slow
    def test_parallel_matches_serial(self, rng, l2):
        objects = [rng.normal(size=4) for _ in range(12)]
        counting = CountingDistance(l2)
        parallel = pairwise_distances(counting, objects, n_jobs=2)
        np.testing.assert_allclose(
            parallel, pairwise_distances(l2, objects), atol=ATOL, rtol=0.0
        )
        assert counting.calls == 12 * 11 // 2
        counting.reset()
        cross = cross_distances(counting, objects[:3], objects, n_jobs=2)
        np.testing.assert_allclose(
            cross, cross_distances(l2, objects[:3], objects), atol=ATOL, rtol=0.0
        )
        assert counting.calls == 36

    @pytest.mark.slow
    def test_training_tables_parallel_identical(self, rng, l2, gaussian_dataset):
        serial = build_training_tables(l2, gaussian_dataset, 15, 15, seed=3)
        parallel = build_training_tables(l2, gaussian_dataset, 15, 15, seed=3, n_jobs=2)
        np.testing.assert_allclose(
            serial.candidate_to_candidate, parallel.candidate_to_candidate
        )
        assert serial.distance_evaluations == parallel.distance_evaluations


# --------------------------------------------------------------------------- #
# Batched embeddings                                                          #
# --------------------------------------------------------------------------- #


def assert_embed_many_matches_scalar(embedding, objects):
    batched = embedding.embed_many(objects)
    scalar = np.vstack([embedding.embed(obj) for obj in objects])
    np.testing.assert_allclose(batched, scalar, atol=ATOL, rtol=0.0)


class TestBatchedEmbeddings:
    def test_reference(self, rng, l2):
        embedding = ReferenceEmbedding(l2, rng.normal(size=4))
        assert_embed_many_matches_scalar(embedding, [rng.normal(size=4) for _ in range(7)])

    def test_reference_asymmetric_measure(self, rng):
        kl = KLDivergence()
        embedding = ReferenceEmbedding(kl, rng.random(5) + 0.1)
        assert_embed_many_matches_scalar(
            embedding, [rng.random(5) + 0.1 for _ in range(6)]
        )

    def test_pivot(self, rng, l2):
        embedding = PivotEmbedding(l2, rng.normal(size=4), rng.normal(size=4) + 3.0)
        assert_embed_many_matches_scalar(embedding, [rng.normal(size=4) for _ in range(7)])

    def test_lipschitz(self, rng, l2, gaussian_dataset):
        embedding = build_lipschitz_embedding(l2, gaussian_dataset, dim=4, set_size=3, seed=5)
        assert_embed_many_matches_scalar(embedding, list(gaussian_dataset)[:10])

    def test_fastmap(self, rng, l2, gaussian_dataset):
        embedding = build_fastmap_embedding(l2, gaussian_dataset, dim=3, seed=5)
        assert_embed_many_matches_scalar(embedding, list(gaussian_dataset)[:10])

    def test_composite_shares_anchor_evaluations(self, rng):
        counting = CountingDistance(L2Distance())
        shared = rng.normal(size=3)
        other = rng.normal(size=3) + 2.0
        composite = CompositeEmbedding(
            [
                ReferenceEmbedding(counting, shared),
                PivotEmbedding(counting, shared, other),
                ReferenceEmbedding(counting, other),
            ]
        )
        assert composite.cost == 2
        objects = [rng.normal(size=3) for _ in range(5)]
        counting.reset()
        batched = composite.embed_many(objects)
        assert counting.calls == 5 * composite.cost
        counting.reset()
        scalar = np.vstack([composite.embed(obj) for obj in objects])
        assert counting.calls == 5 * composite.cost
        np.testing.assert_allclose(batched, scalar, atol=ATOL, rtol=0.0)

    def test_trained_model_embed_many(self, trained_qs, gaussian_split):
        model = trained_qs.model
        objects = list(gaussian_split.queries)[:8]
        batched = model.embed_many(objects)
        scalar = np.vstack([model.embed(obj) for obj in objects])
        np.testing.assert_allclose(batched, scalar, atol=ATOL, rtol=0.0)

    def test_dtw_composite_mixed_lengths(self, rng):
        dtw = ConstrainedDTW()
        anchors = [rng.normal(size=(int(rng.integers(5, 15)), 1)) for _ in range(3)]
        composite = CompositeEmbedding(
            [
                ReferenceEmbedding(dtw, anchors[0]),
                ReferenceEmbedding(dtw, anchors[1]),
                PivotEmbedding(dtw, anchors[1], anchors[2]),
            ]
        )
        objects = [rng.normal(size=(int(rng.integers(4, 20)), 1)) for _ in range(6)]
        assert_embed_many_matches_scalar(composite, objects)


# --------------------------------------------------------------------------- #
# Batched retrieval                                                           #
# --------------------------------------------------------------------------- #


class TestBatchedRetrieval:
    def test_stable_smallest_matches_stable_argsort(self, rng):
        for _ in range(50):
            values = rng.integers(0, 6, size=int(rng.integers(1, 40))).astype(float)
            p = int(rng.integers(1, values.size + 1))
            np.testing.assert_array_equal(
                _stable_smallest(values, p),
                np.argsort(values, kind="stable")[:p],
            )

    def test_filter_order_top_p(self, trained_qs, gaussian_split):
        retriever = FilterRefineRetriever(
            L2Distance(), gaussian_split.database, trained_qs.model
        )
        query_vector = trained_qs.model.embed(gaussian_split.queries[0])
        full = retriever.filter_order(query_vector)
        top = retriever.filter_order(query_vector, 10)
        np.testing.assert_array_equal(full[:10], top)

    def test_query_counts_exact_refine_cost(self, trained_qs, gaussian_split):
        retriever = FilterRefineRetriever(
            L2Distance(), gaussian_split.database, trained_qs.model
        )
        before = retriever._refine_distance.calls
        result = retriever.query(gaussian_split.queries[0], k=3, p=12)
        assert retriever._refine_distance.calls - before == 12
        assert result.refine_distance_computations == 12
        assert result.neighbor_indices.shape == (3,)

    def test_query_many_matches_query_loop(self, trained_qs, gaussian_split):
        retriever = FilterRefineRetriever(
            L2Distance(), gaussian_split.database, trained_qs.model
        )
        queries = list(gaussian_split.queries)[:6]
        batched = retriever.query_many(queries, k=4, p=15)
        for obj, result in zip(queries, batched):
            single = retriever.query(obj, k=4, p=15)
            np.testing.assert_array_equal(result.neighbor_indices, single.neighbor_indices)
            np.testing.assert_allclose(
                result.neighbor_distances, single.neighbor_distances, atol=ATOL, rtol=0.0
            )
            np.testing.assert_array_equal(
                result.candidate_indices, single.candidate_indices
            )
            assert (
                result.total_distance_computations == single.total_distance_computations
            )

    def test_query_many_empty(self, trained_qs, gaussian_split):
        retriever = FilterRefineRetriever(
            L2Distance(), gaussian_split.database, trained_qs.model
        )
        assert retriever.query_many([], k=2, p=5) == []
