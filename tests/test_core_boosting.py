"""Tests for AdaBoost, the triple samplers and the round-wise weak learner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaBoost, RandomTripleSampler, SelectiveTripleSampler
from repro.core.adaboost import initialize_weights, update_weights
from repro.core.training_data import make_sampler, suggest_k1
from repro.core.triples import TripleSet
from repro.core.weak_classifiers import optimize_alpha
from repro.core.weak_learner import (
    CandidateGenerator,
    ChosenClassifier,
    EmbeddingCandidate,
    TripleWeakLearner,
)
from repro.distances.matrix import pairwise_distances
from repro.exceptions import ConfigurationError, TrainingError


# --------------------------------------------------------------------------- #
# AdaBoost                                                                    #
# --------------------------------------------------------------------------- #


class TestWeightHelpers:
    def test_initialize_weights_uniform(self):
        weights = initialize_weights(4)
        assert np.allclose(weights, 0.25)

    def test_initialize_weights_rejects_zero(self):
        with pytest.raises(TrainingError):
            initialize_weights(0)

    def test_update_weights_normalised_and_shifts_mass_to_errors(self):
        weights = initialize_weights(2)
        labels = np.array([1.0, -1.0])
        margins = np.array([1.0, 1.0])  # second example misclassified
        updated = update_weights(weights, margins, labels, alpha=0.5)
        assert updated.sum() == pytest.approx(1.0)
        assert updated[1] > updated[0]

    def test_update_weights_shape_mismatch(self):
        with pytest.raises(TrainingError):
            update_weights(np.ones(2) / 2, np.ones(3), np.ones(2), 0.1)


def _stump_weak_learner(features: np.ndarray, labels: np.ndarray):
    """A decision-stump weak learner over a feature matrix, for AdaBoost tests."""

    def learner(weights, round_index):
        best = None
        for feature_idx in range(features.shape[1]):
            for threshold in np.unique(features[:, feature_idx]):
                for polarity in (1.0, -1.0):
                    margins = polarity * np.sign(features[:, feature_idx] - threshold + 1e-12)
                    alpha, z = optimize_alpha(margins, labels, weights, mode="discrete")
                    if alpha <= 0:
                        continue
                    if best is None or z < best[3]:
                        best = ((feature_idx, threshold, polarity), margins, alpha, z)
        if best is None:
            return None, None, 0.0, 1.0
        return best

    return learner


class TestAdaBoost:
    def test_boosting_learns_a_toy_problem(self):
        """AdaBoost with stumps should fit a 2D XOR-free toy problem well."""
        rng = np.random.default_rng(0)
        features = rng.normal(size=(80, 2))
        labels = np.where(features[:, 0] + 0.5 * features[:, 1] > 0, 1.0, -1.0)
        booster = AdaBoost(labels=labels, max_rounds=15)
        rounds = booster.fit(_stump_weak_learner(features, labels))
        assert len(rounds) >= 1
        assert booster.training_error() <= 0.1
        # Training error is non-increasing-ish: final no worse than first round.
        assert rounds[-1].training_error <= rounds[0].training_error + 1e-9

    def test_weights_remain_normalised(self):
        rng = np.random.default_rng(1)
        features = rng.normal(size=(40, 2))
        labels = np.where(features[:, 0] > 0, 1.0, -1.0)
        booster = AdaBoost(labels=labels, max_rounds=5)
        booster.fit(_stump_weak_learner(features, labels))
        assert booster.weights.sum() == pytest.approx(1.0)
        assert np.all(booster.weights >= 0)

    def test_step_rejects_useless_classifier(self):
        booster = AdaBoost(labels=np.array([1.0, -1.0]), max_rounds=3)
        accepted = booster.step("clf", np.array([0.0, 0.0]), alpha=0.0, z=1.0)
        assert accepted is False
        assert booster.rounds == []

    def test_invalid_labels_rejected(self):
        with pytest.raises(TrainingError):
            AdaBoost(labels=np.array([1.0, 0.5]), max_rounds=3)

    def test_invalid_rounds_rejected(self):
        with pytest.raises(TrainingError):
            AdaBoost(labels=np.array([1.0, -1.0]), max_rounds=0)

    def test_ensemble_margins_accumulate(self):
        labels = np.array([1.0, -1.0, 1.0])
        booster = AdaBoost(labels=labels, max_rounds=5)
        margins = np.array([1.0, -1.0, 1.0])
        booster.step("h1", margins, alpha=0.7, z=0.5)
        booster.step("h2", margins, alpha=0.3, z=0.6)
        assert np.allclose(booster.ensemble_margins, margins)  # sign pattern
        assert booster.training_error() == 0.0

    def test_fit_requires_callable(self):
        booster = AdaBoost(labels=np.array([1.0, -1.0]), max_rounds=2)
        with pytest.raises(TrainingError):
            booster.fit("not-callable")


# --------------------------------------------------------------------------- #
# Triple samplers                                                             #
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def pool_matrix(l2):
    rng = np.random.default_rng(4)
    objects = [rng.normal(size=3) for _ in range(30)]
    return pairwise_distances(l2, objects)


class TestRandomSampler:
    def test_sampled_triples_are_valid(self, pool_matrix):
        triples = RandomTripleSampler(seed=0).sample(pool_matrix, 200)
        assert triples.size == 200
        assert np.all(triples.labels != 0)
        assert np.all(triples.a != triples.b)
        # Labels agree with the distance matrix.
        d_qa = pool_matrix[triples.q, triples.a]
        d_qb = pool_matrix[triples.q, triples.b]
        assert np.all(np.sign(d_qb - d_qa) == triples.labels)

    def test_deterministic_given_seed(self, pool_matrix):
        a = RandomTripleSampler(seed=5).sample(pool_matrix, 50)
        b = RandomTripleSampler(seed=5).sample(pool_matrix, 50)
        assert np.array_equal(a.q, b.q) and np.array_equal(a.labels, b.labels)

    def test_rejects_degenerate_matrix(self):
        with pytest.raises(TrainingError):
            RandomTripleSampler(seed=0).sample(np.zeros((5, 5)), 10)

    def test_rejects_tiny_pool(self):
        with pytest.raises(TrainingError):
            RandomTripleSampler(seed=0).sample(np.zeros((2, 2)), 10)


class TestSelectiveSampler:
    def test_a_is_always_a_near_neighbor(self, pool_matrix):
        k1 = 3
        triples = SelectiveTripleSampler(k1=k1, seed=0).sample(pool_matrix, 300)
        n = pool_matrix.shape[0]
        for q, a, b, label in triples:
            ranks = np.argsort(pool_matrix[q])
            ranks = ranks[ranks != q]
            a_rank = int(np.where(ranks == a)[0][0])
            b_rank = int(np.where(ranks == b)[0][0])
            assert a_rank < k1
            assert b_rank >= k1
            assert label == 1  # a is strictly closer than b by construction

    def test_k1_too_large_rejected(self, pool_matrix):
        with pytest.raises(TrainingError):
            SelectiveTripleSampler(k1=40, seed=0).sample(pool_matrix, 10)

    def test_invalid_k1_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectiveTripleSampler(k1=0)

    def test_deterministic_given_seed(self, pool_matrix):
        a = SelectiveTripleSampler(k1=3, seed=2).sample(pool_matrix, 40)
        b = SelectiveTripleSampler(k1=3, seed=2).sample(pool_matrix, 40)
        assert np.array_equal(a.q, b.q) and np.array_equal(a.b, b.b)


class TestSamplerFactory:
    def test_make_random(self):
        assert isinstance(make_sampler("random"), RandomTripleSampler)

    def test_make_selective_requires_k1(self):
        assert isinstance(make_sampler("selective", k1=3), SelectiveTripleSampler)
        with pytest.raises(ConfigurationError):
            make_sampler("selective")

    def test_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            make_sampler("exhaustive")

    def test_suggest_k1_matches_paper_guideline(self):
        # kmax=50, |Xtr| one tenth of the database -> k1 = 5 (the paper's example).
        assert suggest_k1(50, 5000, 50000) == 5
        assert suggest_k1(50, 200, 400) == 25
        assert suggest_k1(1, 10, 1000) == 1  # never below 1

    def test_suggest_k1_validates(self):
        with pytest.raises(ConfigurationError):
            suggest_k1(10, 100, 50)


# --------------------------------------------------------------------------- #
# Candidate generation and the round-wise weak learner                        #
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def tables(l2):
    rng = np.random.default_rng(8)
    pool = [rng.normal(size=3) for _ in range(25)]
    candidates = [rng.normal(size=3) for _ in range(12)]
    c_to_pool = np.array([[l2(c, x) for x in pool] for c in candidates])
    c_to_c = np.array([[l2(c1, c2) for c2 in candidates] for c1 in candidates])
    pool_to_pool = np.array([[l2(x1, x2) for x2 in pool] for x1 in pool])
    return c_to_pool, c_to_c, pool_to_pool


class TestCandidateGenerator:
    def test_generates_requested_count(self, tables):
        c_to_pool, c_to_c, _ = tables
        generator = CandidateGenerator(c_to_pool, c_to_c, pivot_fraction=0.5, seed=0)
        candidates = generator.generate(20)
        assert len(candidates) == 20
        kinds = {c.kind for c in candidates}
        assert kinds <= {"reference", "pivot"}

    def test_reference_values_come_from_table(self, tables):
        c_to_pool, c_to_c, _ = tables
        generator = CandidateGenerator(c_to_pool, c_to_c, pivot_fraction=0.0, seed=0)
        candidate = generator.generate(1)[0]
        assert candidate.kind == "reference"
        idx = candidate.candidate_indices[0]
        assert np.array_equal(candidate.values, c_to_pool[idx])

    def test_pivot_values_match_projection_formula(self, tables):
        c_to_pool, c_to_c, _ = tables
        generator = CandidateGenerator(c_to_pool, c_to_c, pivot_fraction=1.0, seed=0)
        candidate = generator.generate(1)[0]
        assert candidate.kind == "pivot"
        i, j = candidate.candidate_indices
        expected = (c_to_pool[i] ** 2 + c_to_c[i, j] ** 2 - c_to_pool[j] ** 2) / (
            2 * c_to_c[i, j]
        )
        assert np.allclose(candidate.values, expected)

    def test_pivot_requires_candidate_matrix(self, tables):
        c_to_pool, _, _ = tables
        with pytest.raises(TrainingError):
            CandidateGenerator(c_to_pool, None, pivot_fraction=0.5)
        # but pivot_fraction=0 works without it
        CandidateGenerator(c_to_pool, None, pivot_fraction=0.0)

    def test_invalid_pivot_fraction(self, tables):
        c_to_pool, c_to_c, _ = tables
        with pytest.raises(TrainingError):
            CandidateGenerator(c_to_pool, c_to_c, pivot_fraction=1.5)


class TestTripleWeakLearner:
    def _make_learner(self, tables, query_sensitive=True, mode="confidence"):
        c_to_pool, c_to_c, pool_to_pool = tables
        triples = SelectiveTripleSampler(k1=3, seed=1).sample(pool_to_pool, 300)
        generator = CandidateGenerator(c_to_pool, c_to_c, pivot_fraction=0.5, seed=2)
        learner = TripleWeakLearner(
            triples=triples,
            generator=generator,
            classifiers_per_round=15,
            intervals_per_candidate=4,
            query_sensitive=query_sensitive,
            mode=mode,
            seed=3,
        )
        return learner, triples

    def test_returns_useful_classifier(self, tables):
        learner, triples = self._make_learner(tables)
        weights = np.full(triples.size, 1.0 / triples.size)
        chosen, margins, alpha, z = learner(weights, 0)
        assert isinstance(chosen, ChosenClassifier)
        assert alpha > 0 and z < 1.0
        assert margins.shape == (triples.size,)

    def test_query_insensitive_only_uses_global_interval(self, tables):
        learner, triples = self._make_learner(tables, query_sensitive=False)
        weights = np.full(triples.size, 1.0 / triples.size)
        chosen, _, _, _ = learner(weights, 0)
        assert chosen.interval.is_global

    def test_discrete_mode_returns_sign_margins(self, tables):
        learner, triples = self._make_learner(tables, mode="discrete")
        weights = np.full(triples.size, 1.0 / triples.size)
        chosen, margins, alpha, _ = learner(weights, 0)
        assert set(np.unique(margins)) <= {-1.0, 0.0, 1.0}

    def test_interval_coverage_constraint_respected(self, tables):
        c_to_pool, c_to_c, pool_to_pool = tables
        triples = SelectiveTripleSampler(k1=3, seed=1).sample(pool_to_pool, 200)
        generator = CandidateGenerator(c_to_pool, c_to_c, pivot_fraction=0.0, seed=2)
        learner = TripleWeakLearner(
            triples=triples,
            generator=generator,
            classifiers_per_round=5,
            intervals_per_candidate=10,
            min_interval_fraction=0.5,
            seed=3,
        )
        candidate = generator.generate(1)[0]
        values = np.sort(candidate.values[triples.object_indices()])
        for interval in learner._candidate_intervals(candidate):
            if interval.is_global:
                continue
            covered = np.mean((values >= interval.low) & (values <= interval.high))
            assert covered >= 0.5 - 1e-9

    def test_invalid_configuration_rejected(self, tables):
        c_to_pool, c_to_c, pool_to_pool = tables
        triples = RandomTripleSampler(seed=0).sample(pool_to_pool, 50)
        generator = CandidateGenerator(c_to_pool, c_to_c, seed=0)
        with pytest.raises(TrainingError):
            TripleWeakLearner(triples, generator, classifiers_per_round=0)
        with pytest.raises(TrainingError):
            TripleWeakLearner(triples, generator, 5, min_interval_fraction=1.5)
        with pytest.raises(TrainingError):
            TripleWeakLearner(triples, generator, 5, mode="bogus")
