"""Tests for the trained model (F_out, A_i(q), D_out) and the trainer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import BoostMapTrainer, QuerySensitiveModel, TrainingConfig
from repro.core.model import ClassifierTerm, CoordinateSpec, build_coordinate
from repro.core.splitters import GLOBAL_INTERVAL, Interval
from repro.core.trainer import build_training_tables
from repro.distances import L2Distance
from repro.embeddings import ReferenceEmbedding
from repro.exceptions import (
    ConfigurationError,
    SerializationError,
    TrainingError,
)


# --------------------------------------------------------------------------- #
# Hand-built models                                                           #
# --------------------------------------------------------------------------- #


def _hand_built_model(query_sensitive: bool = True) -> QuerySensitiveModel:
    """A small model over R^2 with two reference coordinates."""
    l2 = L2Distance()
    refs = [np.array([0.0, 0.0]), np.array([4.0, 0.0])]
    coordinates = [ReferenceEmbedding(l2, r, reference_id=i) for i, r in enumerate(refs)]
    specs = [CoordinateSpec("reference", (i,)) for i in range(2)]
    if query_sensitive:
        terms = [
            ClassifierTerm(coordinate=0, interval=Interval(0.0, 2.0), alpha=1.0),
            ClassifierTerm(coordinate=1, interval=Interval(0.0, 2.0), alpha=0.5),
            ClassifierTerm(coordinate=0, interval=GLOBAL_INTERVAL, alpha=0.25),
        ]
    else:
        terms = [
            ClassifierTerm(coordinate=0, interval=GLOBAL_INTERVAL, alpha=1.0),
            ClassifierTerm(coordinate=1, interval=GLOBAL_INTERVAL, alpha=0.5),
        ]
    return QuerySensitiveModel(coordinates, specs, terms, query_sensitive=query_sensitive)


class TestModelBasics:
    def test_dim_and_cost(self):
        model = _hand_built_model()
        assert model.dim == 2
        assert model.cost == 2

    def test_embed_matches_reference_distances(self):
        model = _hand_built_model()
        vec = model.embed(np.array([3.0, 0.0]))
        assert vec[0] == pytest.approx(3.0)
        assert vec[1] == pytest.approx(1.0)

    def test_weights_follow_eq_10(self):
        model = _hand_built_model()
        # Query at (1, 0): F = (1, 3).  Coordinate 0 gets alpha 1.0 (interval
        # [0,2] contains 1) + 0.25 (global); coordinate 1 gets nothing
        # (3 outside [0,2]).
        weights = model.weights(model.embed(np.array([1.0, 0.0])))
        assert weights[0] == pytest.approx(1.25)
        assert weights[1] == pytest.approx(0.0)

    def test_weights_fall_back_to_global_when_nothing_fires(self):
        l2 = L2Distance()
        coordinates = [ReferenceEmbedding(l2, np.zeros(2), reference_id=0)]
        specs = [CoordinateSpec("reference", (0,))]
        terms = [ClassifierTerm(0, Interval(0.0, 1.0), alpha=0.7)]
        model = QuerySensitiveModel(coordinates, specs, terms)
        far_query_vec = model.embed(np.array([50.0, 0.0]))  # F = 50, outside [0,1]
        weights = model.weights(far_query_vec)
        assert weights[0] == pytest.approx(0.7)  # global fallback

    def test_weight_matrix_matches_per_query_weights(self):
        model = _hand_built_model()
        queries = np.array([[1.0, 3.0], [0.5, 0.5], [10.0, 10.0]])
        matrix = model.weight_matrix(queries)
        for row, q in zip(matrix, queries):
            assert np.allclose(row, model.weights(q))

    def test_distance_is_weighted_l1(self):
        model = _hand_built_model(query_sensitive=False)
        q = np.array([1.0, 1.0])
        x = np.array([2.0, 3.0])
        assert model.distance(q, x) == pytest.approx(1.0 * 1 + 0.5 * 2)

    def test_distances_to_matches_scalar(self):
        model = _hand_built_model()
        q = model.embed(np.array([1.0, 0.0]))
        db = np.array([[0.0, 4.0], [2.0, 2.0], [5.0, 1.0]])
        batch = model.distances_to(q, db)
        assert np.allclose(batch, [model.distance(q, row) for row in db])

    def test_global_weights_sum_alphas(self):
        model = _hand_built_model()
        assert np.allclose(model.global_weights(), [1.25, 0.5])

    def test_summary_mentions_dimensions(self):
        text = _hand_built_model().summary()
        assert "dimensions: 2" in text

    def test_validation_errors(self):
        l2 = L2Distance()
        coords = [ReferenceEmbedding(l2, np.zeros(2))]
        specs = [CoordinateSpec("reference", (0,))]
        good_terms = [ClassifierTerm(0, GLOBAL_INTERVAL, 1.0)]
        with pytest.raises(TrainingError):
            QuerySensitiveModel([], [], good_terms)
        with pytest.raises(TrainingError):
            QuerySensitiveModel(coords, specs, [])
        with pytest.raises(TrainingError):
            QuerySensitiveModel(coords, specs, [ClassifierTerm(3, GLOBAL_INTERVAL, 1.0)])
        with pytest.raises(TrainingError):
            ClassifierTerm(0, GLOBAL_INTERVAL, alpha=0.0)
        with pytest.raises(TrainingError):
            CoordinateSpec("reference", (0, 1))
        with pytest.raises(TrainingError):
            CoordinateSpec("mystery", (0,))


class TestProposition1:
    """The classifier view must equal the embedding + D_out view (Prop. 1)."""

    def test_hand_built_model_equivalence(self):
        model = _hand_built_model()
        rng = np.random.default_rng(0)
        for _ in range(50):
            q, a, b = rng.uniform(-1, 5, size=(3, 2))
            q_vec, a_vec, b_vec = model.embed(q), model.embed(a), model.embed(b)
            # Explicit H(q,a,b) = sum_j alpha_j * S_j(q) * (|F_j(q)-F_j(b)| - |F_j(q)-F_j(a)|)
            explicit = 0.0
            active = False
            for term in model.terms:
                if term.interval.contains(q_vec[term.coordinate]):
                    active = True
                    i = term.coordinate
                    explicit += term.alpha * (
                        abs(q_vec[i] - b_vec[i]) - abs(q_vec[i] - a_vec[i])
                    )
            if not active:
                continue  # the fallback path intentionally deviates from H
            assert model.classify_vectors(q_vec, a_vec, b_vec) == pytest.approx(explicit)

    def test_trained_model_equivalence_on_training_pool(self, trained_qs):
        model = trained_qs.model
        tables = trained_qs.tables
        triples = trained_qs.triples
        vectors = model.embed_many(tables.pool_objects)
        margins = model.classifier_margins(
            vectors[triples.q], vectors[triples.a], vectors[triples.b]
        )
        # Rebuild H explicitly from the terms.
        weights = model.weight_matrix(vectors[triples.q])
        explicit = (
            (np.abs(vectors[triples.q] - vectors[triples.b]) * weights).sum(axis=1)
            - (np.abs(vectors[triples.q] - vectors[triples.a]) * weights).sum(axis=1)
        )
        assert np.allclose(margins, explicit)


class TestModelSurgery:
    def test_truncate_keeps_leading_coordinates(self, trained_qs):
        model = trained_qs.model
        if model.dim < 2:
            pytest.skip("model too small to truncate")
        truncated = model.truncate(model.dim - 1)
        assert truncated.dim == model.dim - 1
        assert all(t.coordinate < truncated.dim for t in truncated.terms)

    def test_truncate_bounds(self, trained_qs):
        model = trained_qs.model
        with pytest.raises(TrainingError):
            model.truncate(0)
        with pytest.raises(TrainingError):
            model.truncate(model.dim + 1)

    def test_truncated_embedding_is_prefix_of_full(self, trained_qs, gaussian_split):
        model = trained_qs.model
        if model.dim < 2:
            pytest.skip("model too small to truncate")
        truncated = model.truncate(2)
        obj = gaussian_split.queries[0]
        assert np.allclose(model.embed(obj)[:2], truncated.embed(obj))

    def test_triple_error_in_unit_interval(self, trained_qs):
        model = trained_qs.model
        tables = trained_qs.tables
        triples = trained_qs.triples
        vectors = model.embed_many(tables.pool_objects)
        error = model.triple_error(
            vectors[triples.q], vectors[triples.a], vectors[triples.b], triples.labels
        )
        assert 0.0 <= error <= 1.0
        # The trained model should do far better than random guessing on its
        # own training triples.
        assert error < 0.25


class TestSerialization:
    def test_round_trip(self, trained_qs, gaussian_split, l2):
        model = trained_qs.model
        payload = model.to_dict()
        rebuilt = QuerySensitiveModel.from_dict(
            payload,
            l2,
            trained_qs.tables.candidate_objects,
            trained_qs.tables.candidate_to_candidate,
        )
        obj = gaussian_split.queries[1]
        assert np.allclose(model.embed(obj), rebuilt.embed(obj))
        vec = model.embed(obj)
        assert np.allclose(model.weights(vec), rebuilt.weights(vec))

    def test_missing_field_rejected(self, l2):
        with pytest.raises(SerializationError):
            QuerySensitiveModel.from_dict({"coordinates": []}, l2, [])

    def test_out_of_range_candidate_rejected(self, l2):
        spec = CoordinateSpec("reference", (5,))
        with pytest.raises(SerializationError):
            build_coordinate(spec, l2, [np.zeros(2)])


class TestTrainingTables:
    def test_shared_sample_reuses_matrix(self, gaussian_split, l2):
        tables = build_training_tables(
            l2, gaussian_split.database, n_candidates=20, n_training_objects=20, seed=0
        )
        assert np.array_equal(tables.candidate_indices, tables.pool_indices)
        assert np.array_equal(tables.candidate_to_candidate, tables.pool_to_pool)
        # Only C(20, 2) distinct distances were evaluated.
        assert tables.distance_evaluations == 20 * 19 // 2

    def test_distinct_sizes_build_all_matrices(self, gaussian_split, l2):
        tables = build_training_tables(
            l2, gaussian_split.database, n_candidates=10, n_training_objects=15, seed=0
        )
        assert tables.candidate_to_pool.shape == (10, 15)
        assert tables.pool_to_pool.shape == (15, 15)
        assert tables.candidate_to_candidate.shape == (10, 10)

    def test_oversized_requests_rejected(self, gaussian_split, l2):
        with pytest.raises(ConfigurationError):
            build_training_tables(
                l2, gaussian_split.database, n_candidates=10**6, n_training_objects=5
            )


class TestTrainingConfig:
    def test_method_tags(self):
        assert TrainingConfig(sampler="selective", query_sensitive=True).method_tag == "Se-QS"
        assert TrainingConfig(sampler="random", query_sensitive=False).method_tag == "Ra-QI"

    def test_with_overrides(self):
        config = TrainingConfig()
        other = config.with_overrides(n_rounds=5)
        assert other.n_rounds == 5
        assert config.n_rounds == 32  # the original is unchanged

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_candidates": 0},
            {"n_triples": -1},
            {"sampler": "bogus"},
            {"mode": "bogus"},
            {"pivot_fraction": 2.0},
            {"min_interval_fraction": -0.1},
            {"k1": 0},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrainingConfig(**kwargs)


class TestTrainer:
    def test_training_produces_consistent_result(self, trained_qs, tiny_training_config):
        model = trained_qs.model
        assert 1 <= model.dim <= tiny_training_config.n_rounds
        assert len(trained_qs.rounds) == len(model.terms)
        assert trained_qs.final_training_error < 0.5
        # Error history is recorded per accepted round.
        assert len(trained_qs.training_error_history) == len(trained_qs.rounds)

    def test_query_insensitive_model_has_only_global_intervals(self, trained_qi):
        model = trained_qi.model
        assert model.query_sensitive is False
        assert all(term.interval.is_global for term in model.terms)

    def test_query_sensitive_model_uses_some_splitters(self, trained_qs):
        """At least one term should use a non-global interval."""
        assert any(not term.interval.is_global for term in trained_qs.model.terms)

    def test_shared_tables_are_reused(self, gaussian_split, l2, shared_tables):
        config = TrainingConfig(
            n_candidates=40,
            n_training_objects=40,
            n_triples=300,
            n_rounds=4,
            classifiers_per_round=10,
            seed=3,
        )
        result = BoostMapTrainer(
            l2, gaussian_split.database, config, tables=shared_tables
        ).train()
        assert result.tables is shared_tables

    def test_reproducible_given_seed(self, gaussian_split, l2):
        config = TrainingConfig(
            n_candidates=25,
            n_training_objects=25,
            n_triples=200,
            n_rounds=4,
            classifiers_per_round=10,
            seed=99,
        )
        a = BoostMapTrainer(l2, gaussian_split.database, config).train()
        b = BoostMapTrainer(l2, gaussian_split.database, config).train()
        assert a.model.to_dict() == b.model.to_dict()

    def test_k1_derived_from_kmax_when_missing(self, gaussian_split, l2):
        config = TrainingConfig(
            n_candidates=30,
            n_training_objects=30,
            n_triples=200,
            n_rounds=3,
            classifiers_per_round=10,
            sampler="selective",
            k1=None,
            kmax=10,
            seed=1,
        )
        trainer = BoostMapTrainer(l2, gaussian_split.database, config)
        assert trainer._resolve_k1(30) == max(
            1, round(10 * 30 / len(gaussian_split.database))
        )

    def test_invalid_inputs_rejected(self, gaussian_split, l2):
        with pytest.raises(TrainingError):
            BoostMapTrainer("not-a-distance", gaussian_split.database)
        with pytest.raises(TrainingError):
            BoostMapTrainer(l2, "not-a-dataset")

    def test_discrete_mode_trains(self, gaussian_split, l2):
        config = TrainingConfig(
            n_candidates=25,
            n_training_objects=25,
            n_triples=300,
            n_rounds=6,
            classifiers_per_round=15,
            mode="discrete",
            seed=4,
        )
        result = BoostMapTrainer(l2, gaussian_split.database, config).train()
        assert result.model.dim >= 1
        assert result.final_training_error < 0.5
