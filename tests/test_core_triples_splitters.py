"""Tests for training triples, splitters and weak-classifier primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GLOBAL_INTERVAL, Interval, TripleSet, triple_label
from repro.core.weak_classifiers import (
    apply_splitter,
    classifier_margins,
    optimize_alpha,
    weighted_error,
)
from repro.exceptions import TrainingError


class TestTripleLabel:
    def test_closer_to_a(self):
        assert triple_label(1.0, 2.0) == 1

    def test_closer_to_b(self):
        assert triple_label(2.0, 1.0) == -1

    def test_tie(self):
        assert triple_label(1.5, 1.5) == 0


class TestTripleSet:
    def test_basic_construction(self):
        triples = TripleSet(q=[0, 1], a=[1, 2], b=[2, 0], labels=[1, -1])
        assert triples.size == 2
        assert len(triples) == 2
        assert list(triples)[0] == (0, 1, 2, 1)

    def test_object_indices(self):
        triples = TripleSet(q=[0, 5], a=[1, 2], b=[2, 7], labels=[1, 1])
        assert list(triples.object_indices()) == [0, 1, 2, 5, 7]

    def test_subset(self):
        triples = TripleSet(q=[0, 1, 2], a=[1, 2, 0], b=[2, 0, 1], labels=[1, -1, 1])
        sub = triples.subset(np.array([0, 2]))
        assert sub.size == 2
        assert list(sub.labels) == [1, 1]

    def test_rejects_invalid_labels(self):
        with pytest.raises(TrainingError):
            TripleSet(q=[0], a=[1], b=[2], labels=[0])

    def test_rejects_a_equal_b(self):
        with pytest.raises(TrainingError):
            TripleSet(q=[0], a=[1], b=[1], labels=[1])

    def test_rejects_length_mismatch(self):
        with pytest.raises(TrainingError):
            TripleSet(q=[0, 1], a=[1], b=[2], labels=[1])

    def test_from_distance_matrix_derives_labels_and_drops_ties(self):
        distances = np.array(
            [
                [0.0, 1.0, 2.0, 1.0],
                [1.0, 0.0, 1.0, 2.0],
                [2.0, 1.0, 0.0, 3.0],
                [1.0, 2.0, 3.0, 0.0],
            ]
        )
        triples = TripleSet.from_distance_matrix(
            q=np.array([0, 0, 0]),
            a=np.array([1, 2, 1]),
            b=np.array([2, 1, 3]),  # last one ties (d=1 vs d=1) and is dropped
            distances=distances,
        )
        assert triples.size == 2
        assert list(triples.labels) == [1, -1]

    def test_from_distance_matrix_all_ties_rejected(self):
        distances = np.ones((3, 3))
        with pytest.raises(TrainingError):
            TripleSet.from_distance_matrix(
                q=np.array([0]), a=np.array([1]), b=np.array([2]), distances=distances
            )


class TestInterval:
    def test_contains_scalar_and_array(self):
        interval = Interval(low=0.0, high=1.0)
        assert interval.contains(0.5) is True
        assert interval.contains(1.5) is False
        mask = interval.contains(np.array([-0.5, 0.0, 0.7, 2.0]))
        assert list(mask) == [False, True, True, False]

    def test_in_operator(self):
        assert 0.3 in Interval(0.0, 1.0)
        assert 2.0 not in Interval(0.0, 1.0)

    def test_global_interval(self):
        assert GLOBAL_INTERVAL.is_global
        assert GLOBAL_INTERVAL.contains(1e300)
        assert not Interval(0.0, np.inf).is_global

    def test_width(self):
        assert Interval(1.0, 3.5).width() == 2.5
        assert np.isinf(GLOBAL_INTERVAL.width())

    def test_rejects_inverted_bounds(self):
        with pytest.raises(TrainingError):
            Interval(low=2.0, high=1.0)

    def test_rejects_nan(self):
        with pytest.raises(TrainingError):
            Interval(low=np.nan, high=1.0)

    def test_as_tuple(self):
        assert Interval(0.5, 1.5).as_tuple() == (0.5, 1.5)


class TestClassifierMargins:
    def test_sign_predicts_proximity(self):
        # F(q)=0, F(a)=1, F(b)=5: q appears closer to a -> positive margin.
        margins = classifier_margins(np.array([0.0]), np.array([1.0]), np.array([5.0]))
        assert margins[0] == pytest.approx(4.0)

    def test_zero_when_equidistant(self):
        margins = classifier_margins(np.array([0.0]), np.array([2.0]), np.array([-2.0]))
        assert margins[0] == 0.0

    def test_vectorised(self):
        q = np.array([0.0, 1.0, 2.0])
        a = np.array([1.0, 1.0, 0.0])
        b = np.array([3.0, 0.0, 5.0])
        margins = classifier_margins(q, a, b)
        assert margins.shape == (3,)
        assert margins[0] == pytest.approx(2.0)
        assert margins[1] == pytest.approx(1.0)
        assert margins[2] == pytest.approx(1.0)


class TestApplySplitter:
    def test_global_interval_is_identity(self):
        margins = np.array([1.0, -2.0, 0.5])
        out = apply_splitter(margins, np.array([0.0, 10.0, -5.0]), GLOBAL_INTERVAL)
        assert np.array_equal(out, margins)

    def test_outside_interval_zeroed(self):
        margins = np.array([1.0, -2.0, 0.5])
        values_q = np.array([0.0, 10.0, 0.5])
        out = apply_splitter(margins, values_q, Interval(0.0, 1.0))
        assert list(out) == [1.0, 0.0, 0.5]


class TestWeightedError:
    def test_perfect_classifier(self):
        margins = np.array([1.0, -1.0, 2.0])
        labels = np.array([1, -1, 1])
        weights = np.full(3, 1 / 3)
        assert weighted_error(margins, labels, weights) == 0.0

    def test_always_wrong_classifier(self):
        margins = np.array([-1.0, 1.0])
        labels = np.array([1, -1])
        weights = np.array([0.5, 0.5])
        assert weighted_error(margins, labels, weights) == 1.0

    def test_abstention_counts_half(self):
        margins = np.array([0.0, 0.0])
        labels = np.array([1, -1])
        weights = np.array([0.5, 0.5])
        assert weighted_error(margins, labels, weights) == 0.5

    def test_weights_matter(self):
        margins = np.array([1.0, -1.0])
        labels = np.array([1, 1])  # second is misclassified
        weights = np.array([0.9, 0.1])
        assert weighted_error(margins, labels, weights) == pytest.approx(0.1)

    def test_zero_total_weight_rejected(self):
        with pytest.raises(TrainingError):
            weighted_error(np.array([1.0]), np.array([1]), np.array([0.0]))


class TestOptimizeAlpha:
    @pytest.mark.parametrize("mode", ["confidence", "discrete"])
    def test_good_classifier_gets_positive_alpha_and_small_z(self, mode):
        labels = np.array([1, 1, -1, -1], dtype=float)
        margins = np.array([0.8, 0.5, -0.9, -0.4])
        weights = np.full(4, 0.25)
        alpha, z = optimize_alpha(margins, labels, weights, mode=mode)
        assert alpha > 0
        assert z < 1.0

    @pytest.mark.parametrize("mode", ["confidence", "discrete"])
    def test_useless_classifier_rejected(self, mode):
        labels = np.array([1, -1], dtype=float)
        margins = np.array([-0.5, 0.5])  # always wrong
        weights = np.array([0.5, 0.5])
        alpha, z = optimize_alpha(margins, labels, weights, mode=mode)
        assert alpha == 0.0
        assert z == 1.0

    def test_abstaining_classifier_rejected(self):
        labels = np.array([1, -1], dtype=float)
        margins = np.zeros(2)
        weights = np.array([0.5, 0.5])
        alpha, z = optimize_alpha(margins, labels, weights, mode="confidence")
        assert alpha == 0.0

    def test_confidence_alpha_minimises_z(self):
        rng = np.random.default_rng(0)
        labels = np.sign(rng.normal(size=50))
        labels[labels == 0] = 1
        margins = labels * np.abs(rng.normal(size=50)) * 0.7 + rng.normal(size=50) * 0.3
        weights = np.full(50, 1 / 50)
        alpha, z = optimize_alpha(margins, labels, weights, mode="confidence")
        if alpha > 0:
            # Perturbing alpha should not reduce Z (it is the minimiser).
            def z_at(a):
                return float(np.sum(weights * np.exp(-a * labels * margins)))

            assert z_at(alpha) <= z_at(alpha * 1.2) + 1e-6
            assert z_at(alpha) <= z_at(alpha * 0.8) + 1e-6

    def test_perfect_separation_capped_not_overflowing(self):
        labels = np.array([1, 1, -1, -1], dtype=float)
        margins = labels.copy()
        weights = np.full(4, 0.25)
        alpha, z = optimize_alpha(margins, labels, weights, mode="confidence")
        assert np.isfinite(alpha) and alpha > 0
        assert np.isfinite(z) and z < 1.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(TrainingError):
            optimize_alpha(np.zeros(3), np.zeros(2), np.zeros(3))

    def test_unknown_mode_rejected(self):
        with pytest.raises(TrainingError):
            optimize_alpha(np.zeros(2), np.ones(2), np.full(2, 0.5), mode="bogus")
