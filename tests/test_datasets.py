"""Tests for the dataset containers and synthetic generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    Dataset,
    DigitImageGenerator,
    RetrievalSplit,
    StringMutationGenerator,
    TimeSeriesGenerator,
    ToyUnitSquare,
    make_digit_dataset,
    make_gaussian_clusters,
    make_string_dataset,
    make_timeseries_dataset,
    make_toy_dataset,
)
from repro.exceptions import DatasetError


class TestDataset:
    def test_basic_container_behaviour(self):
        ds = Dataset(objects=[1, 2, 3], labels=[0, 1, 0], name="ints")
        assert len(ds) == 3
        assert list(ds) == [1, 2, 3]
        assert ds[1] == 2
        assert ds.label_of(1) == 1

    def test_label_of_none_when_unlabeled(self):
        ds = Dataset(objects=["a", "b"])
        assert ds.label_of(0) is None

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            Dataset(objects=[])

    def test_rejects_label_length_mismatch(self):
        with pytest.raises(DatasetError):
            Dataset(objects=[1, 2], labels=[0])

    def test_subset_shares_objects_and_slices_labels(self):
        objects = [np.array([i]) for i in range(5)]
        ds = Dataset(objects=objects, labels=[0, 1, 2, 3, 4])
        sub = ds.subset([3, 1])
        assert sub[0] is objects[3]
        assert list(sub.labels) == [3, 1]

    def test_subset_rejects_empty(self):
        ds = Dataset(objects=[1, 2])
        with pytest.raises(DatasetError):
            ds.subset([])

    def test_sample_without_replacement(self):
        ds = Dataset(objects=list(range(20)))
        sample = ds.sample(10, seed=0)
        assert len(sample) == 10
        assert len(set(sample.objects)) == 10

    def test_sample_size_bounds(self):
        ds = Dataset(objects=[1, 2, 3])
        with pytest.raises(DatasetError):
            ds.sample(0)
        with pytest.raises(DatasetError):
            ds.sample(4)


class TestRetrievalSplit:
    def test_from_dataset_is_disjoint_and_complete(self):
        ds = Dataset(objects=list(range(50)))
        split = RetrievalSplit.from_dataset(ds, n_queries=10, seed=0)
        assert split.query_count == 10
        assert split.database_size == 40
        assert set(split.queries.objects).isdisjoint(split.database.objects)
        assert set(split.queries.objects) | set(split.database.objects) == set(range(50))

    def test_invalid_query_counts(self):
        ds = Dataset(objects=list(range(10)))
        with pytest.raises(DatasetError):
            RetrievalSplit.from_dataset(ds, n_queries=0)
        with pytest.raises(DatasetError):
            RetrievalSplit.from_dataset(ds, n_queries=10)

    def test_deterministic_given_seed(self):
        ds = Dataset(objects=list(range(30)))
        a = RetrievalSplit.from_dataset(ds, n_queries=5, seed=3)
        b = RetrievalSplit.from_dataset(ds, n_queries=5, seed=3)
        assert a.queries.objects == b.queries.objects


class TestDigitGenerator:
    def test_image_shape_and_range(self):
        generator = DigitImageGenerator(image_size=28)
        image = generator.render(5, rng=0)
        assert image.shape == (28, 28)
        assert image.min() >= 0.0 and image.max() <= 1.0
        assert image.max() > 0.5  # there is actual ink

    def test_deterministic_given_seed(self):
        generator = DigitImageGenerator()
        assert np.array_equal(generator.render(3, rng=9), generator.render(3, rng=9))

    def test_different_seeds_produce_different_images(self):
        generator = DigitImageGenerator()
        assert not np.array_equal(generator.render(3, rng=1), generator.render(3, rng=2))

    def test_rejects_unknown_digit(self):
        with pytest.raises(DatasetError):
            DigitImageGenerator().render(11)

    def test_generate_labels_match_requested_classes(self):
        ds = DigitImageGenerator().generate(30, digits=[1, 7], seed=0)
        assert set(np.unique(ds.labels)) <= {1, 7}
        assert len(ds) == 30

    def test_make_digit_dataset_shapes(self):
        database, queries = make_digit_dataset(n_database=20, n_queries=5, seed=0)
        assert len(database) == 20 and len(queries) == 5
        assert database[0].shape == (28, 28)

    def test_invalid_sizes_rejected(self):
        with pytest.raises(DatasetError):
            make_digit_dataset(n_database=0, n_queries=5)
        with pytest.raises(DatasetError):
            DigitImageGenerator(image_size=4)


class TestTimeSeriesGenerator:
    def test_series_shape_and_normalisation(self):
        generator = TimeSeriesGenerator(length=50, n_dims=3)
        ds = generator.generate(10, seed=0)
        series = ds[0]
        assert series.ndim == 2 and series.shape[1] == 3
        # Mean-normalised per dimension.
        assert np.allclose(series.mean(axis=0), 0.0, atol=1e-9)

    def test_lengths_vary_because_of_time_warping(self):
        generator = TimeSeriesGenerator(length=60, warp_strength=0.3)
        ds = generator.generate(20, seed=1)
        lengths = {obj.shape[0] for obj in ds}
        assert len(lengths) > 1

    def test_labels_identify_seed_patterns(self):
        generator = TimeSeriesGenerator(n_seeds=4)
        ds = generator.generate(40, seed=2)
        assert set(np.unique(ds.labels)) <= set(range(4))

    def test_make_timeseries_dataset_split(self):
        database, queries = make_timeseries_dataset(
            n_database=30, n_queries=5, n_seeds=4, length=32, seed=0
        )
        assert len(database) == 30 and len(queries) == 5

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            TimeSeriesGenerator(n_seeds=0)
        with pytest.raises(DatasetError):
            TimeSeriesGenerator(length=4)
        with pytest.raises(DatasetError):
            TimeSeriesGenerator(warp_strength=1.5)

    def test_deterministic_given_seed(self):
        a = TimeSeriesGenerator().generate(5, seed=7)
        b = TimeSeriesGenerator().generate(5, seed=7)
        assert all(np.array_equal(x, y) for x, y in zip(a, b))


class TestToyDataset:
    def test_default_layout_matches_paper_sizes(self):
        toy = make_toy_dataset()
        assert toy.database.shape == (20, 2)
        assert toy.queries.shape == (10, 2)
        assert len(toy.reference_indices) == 3
        assert toy.triple_count() == 10 * 20 * 19  # = 3800, as in the caption

    def test_special_queries_near_references(self):
        toy = make_toy_dataset(near_distance=0.02, seed=0)
        for q_idx, r_idx in zip(toy.special_query_indices, toy.reference_indices):
            gap = np.linalg.norm(toy.queries[q_idx] - toy.database[r_idx])
            assert gap < 0.15

    def test_points_inside_unit_square(self):
        toy = make_toy_dataset(seed=1)
        for array in (toy.database, toy.queries):
            assert np.all(array >= 0.0) and np.all(array <= 1.0)

    def test_as_datasets(self):
        toy = make_toy_dataset()
        db, queries = toy.as_datasets()
        assert len(db) == 20 and len(queries) == 10

    def test_invalid_configuration_rejected(self):
        with pytest.raises(DatasetError):
            make_toy_dataset(n_database=2, n_references=3)
        with pytest.raises(DatasetError):
            make_toy_dataset(near_distance=0.0)
        with pytest.raises(DatasetError):
            ToyUnitSquare(
                database=np.zeros((5, 2)),
                queries=np.zeros((3, 2)),
                reference_indices=[9],
                special_query_indices=[0],
            )


class TestStringGenerator:
    def test_mutations_preserve_alphabet(self):
        generator = StringMutationGenerator(alphabet="AB", ancestor_length=20)
        ds = generator.generate(10, seed=0)
        assert all(set(s) <= {"A", "B"} for s in ds)

    def test_same_family_strings_are_similar(self):
        from repro.distances import EditDistance

        database, _ = make_string_dataset(n_database=40, n_queries=5, n_ancestors=4, seed=0)
        edit = EditDistance()
        labels = database.labels
        same_idx = np.where(labels == labels[0])[0]
        diff_idx = np.where(labels != labels[0])[0]
        if same_idx.shape[0] < 2 or diff_idx.shape[0] < 1:
            pytest.skip("unlucky label draw")
        d_same = edit(database[int(same_idx[0])], database[int(same_idx[1])])
        d_diff = edit(database[int(same_idx[0])], database[int(diff_idx[0])])
        assert d_same < d_diff

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            StringMutationGenerator(alphabet="A")
        with pytest.raises(DatasetError):
            StringMutationGenerator(mutation_rate=1.5)

    def test_mutation_never_returns_empty(self):
        generator = StringMutationGenerator(indel_rate=1.0)
        assert len(generator.mutate("ACGT", rng=0)) >= 1


class TestGaussianClusters:
    def test_shapes_and_labels(self):
        ds = make_gaussian_clusters(n_objects=50, n_clusters=3, n_dims=4, seed=0)
        assert len(ds) == 50
        assert ds[0].shape == (4,)
        assert set(np.unique(ds.labels)) <= {0, 1, 2}

    def test_cluster_structure_exists(self):
        ds = make_gaussian_clusters(
            n_objects=60, n_clusters=2, n_dims=3, cluster_spread=0.01, seed=1
        )
        points = np.vstack(ds.objects)
        labels = ds.labels
        center0 = points[labels == 0].mean(axis=0)
        center1 = points[labels == 1].mean(axis=0)
        within = np.linalg.norm(points[labels == 0] - center0, axis=1).mean()
        between = np.linalg.norm(center0 - center1)
        assert within < between

    def test_invalid_parameters_rejected(self):
        with pytest.raises(DatasetError):
            make_gaussian_clusters(n_objects=0)
        with pytest.raises(DatasetError):
            make_gaussian_clusters(n_objects=10, cluster_spread=-1.0)
