"""Tests for the shared distance layer (DistanceContext / DistanceStore).

Covers the store itself (keys, persistence round-trips, partial-store
merging, fingerprint safety), the context's DistanceMeasure interface and
matrix primitives (bit-identical to the context-free batch engine when
cold, zero evaluations when warm), and the full train → embed → retrieve
pipeline the acceptance criteria describe: a warm store makes every cached
pair free while the retrieval output stays bit-identical.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro import (
    BoostMapTrainer,
    BruteForceRetriever,
    ConstrainedDTW,
    CountingDistance,
    DistanceContext,
    DistanceStore,
    FilterRefineRetriever,
    KLDivergence,
    L2Distance,
    ShardedRetriever,
    TrainingConfig,
    make_timeseries_dataset,
)
from repro.core.trainer import build_training_tables
from repro.datasets.base import Dataset
from repro.distances import (
    cross_distances,
    fingerprint_objects,
    pairwise_distances,
)
from repro.distances.parallel import ensure_parallel_safe
from repro.exceptions import DistanceError
from repro.retrieval.knn import ground_truth_neighbors


@pytest.fixture
def vectors(rng):
    return [rng.normal(size=5) for _ in range(20)]


@pytest.fixture
def l2_context(vectors):
    return DistanceContext(L2Distance(), vectors)


def _assert_results_identical(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        np.testing.assert_array_equal(a.neighbor_indices, b.neighbor_indices)
        np.testing.assert_array_equal(a.neighbor_distances, b.neighbor_distances)
        np.testing.assert_array_equal(a.candidate_indices, b.candidate_indices)


# --------------------------------------------------------------------------- #
# DistanceStore                                                               #
# --------------------------------------------------------------------------- #


class TestDistanceStore:
    def test_sparse_put_get_symmetric(self):
        store = DistanceStore(symmetric=True)
        store.put(3, 7, 1.25)
        assert store.get(3, 7) == 1.25
        assert store.get(7, 3) == 1.25
        assert store.get(3, 4) is None
        assert len(store) == 1

    def test_asymmetric_keeps_directions_separate(self):
        store = DistanceStore(symmetric=False)
        store.put(1, 2, 0.5)
        assert store.get(1, 2) == 0.5
        assert store.get(2, 1) is None

    def test_block_lookup_and_invalid_diagonal(self):
        store = DistanceStore(symmetric=True)
        values = np.array([[0.0, 1.0, 2.0], [1.0, 0.0, 3.0], [2.0, 3.0, 0.0]])
        store.put_block([4, 5, 6], [4, 5, 6], values, diagonal_valid=False)
        assert store.get(5, 6) == 3.0
        assert store.get(6, 5) == 3.0
        # The mirrored-zero diagonal was never evaluated: it must miss.
        assert store.get(5, 5) is None
        assert len(store) == 6

    def test_save_load_round_trip_bit_identical(self, tmp_path, rng):
        store = DistanceStore(symmetric=True, fingerprint="abc")
        block = rng.normal(size=(3, 4))
        store.put_block([0, 1, 2], [5, 6, 7, 8], block)
        store.put(9, 10, float(rng.normal()))
        store.put(11, 11, float(rng.normal()))
        path = tmp_path / "store.npz"
        store.save(path)
        loaded = DistanceStore.load(path, expected_fingerprint="abc")
        assert loaded.symmetric is True
        assert loaded.fingerprint == "abc"
        assert len(loaded) == len(store)
        for i in range(3):
            for j in range(5, 9):
                assert loaded.get(i, j) == store.get(i, j)  # bit-exact
        assert loaded.get(9, 10) == store.get(9, 10)
        assert loaded.get(11, 11) == store.get(11, 11)

    def test_float32_blocks_round_trip_without_upcast(self, tmp_path, rng):
        # Regression: _DenseBlock used to normalise every block to float64,
        # so a float32 quantized table silently doubled its memory on every
        # (re)open.  Reduced-precision float blocks must survive put_block,
        # save(compress=False) and load(mmap_mode="r") unchanged.
        values = rng.normal(size=(3, 4)).astype(np.float32)
        store = DistanceStore(symmetric=False, fingerprint="f32")
        store.put_block([0, 1, 2], [5, 6, 7, 8], values)
        assert store._blocks[0].values.dtype == np.float32
        path = tmp_path / "store32.npz"
        store.save(path, compress=False)
        eager = DistanceStore.load(path, expected_fingerprint="f32")
        assert eager._blocks[0].values.dtype == np.float32
        mapped = DistanceStore.load(
            path, expected_fingerprint="f32", mmap_mode="r"
        )
        block = mapped._blocks[0].values
        assert block.dtype == np.float32
        # Still backed by the on-disk mapping (np.asarray strips the memmap
        # subclass but keeps the mapped buffer as base).
        assert not block.flags.owndata and isinstance(block.base, np.memmap)
        for i in range(3):
            for j in range(5, 9):
                assert eager.get(i, j) == store.get(i, j)  # bit-exact
                assert mapped.get(i, j) == store.get(i, j)

    def test_load_refuses_fingerprint_mismatch(self, tmp_path):
        store = DistanceStore(symmetric=True, fingerprint="fingerprint-a")
        store.put(0, 1, 2.0)
        path = tmp_path / "store.npz"
        store.save(path)
        with pytest.raises(DistanceError, match="different dataset"):
            DistanceStore.load(path, expected_fingerprint="fingerprint-b")
        # Without an expectation the store loads fine.
        assert DistanceStore.load(path).get(0, 1) == 2.0

    def test_partial_stores_merge(self):
        a = DistanceStore(symmetric=True, fingerprint="f")
        a.put_block([0, 1], [0, 1], np.array([[0.0, 5.0], [5.0, 0.0]]),
                    diagonal_valid=False)
        b = DistanceStore(symmetric=True, fingerprint="f")
        b.put(2, 3, 7.0)
        b.put(0, 2, 9.0)
        a.merge(b)
        assert a.get(1, 0) == 5.0
        assert a.get(3, 2) == 7.0
        assert a.get(2, 0) == 9.0
        assert len(a) == 4

    def test_merge_refuses_mismatched_universe_or_symmetry(self):
        a = DistanceStore(symmetric=True, fingerprint="f1")
        b = DistanceStore(symmetric=True, fingerprint="f2")
        with pytest.raises(DistanceError, match="fingerprint"):
            a.merge(b)
        c = DistanceStore(symmetric=False, fingerprint="f1")
        with pytest.raises(DistanceError, match="symmetry"):
            a.merge(c)


class TestFingerprints:
    def test_order_sensitive(self, vectors):
        assert fingerprint_objects(vectors) != fingerprint_objects(vectors[::-1])

    def test_content_sensitive_and_stable(self, vectors):
        copies = [v.copy() for v in vectors]
        assert fingerprint_objects(vectors) == fingerprint_objects(copies)
        changed = [v.copy() for v in vectors]
        changed[3][0] += 1.0
        assert fingerprint_objects(vectors) != fingerprint_objects(changed)

    def test_mixed_object_kinds(self):
        objects = ["abc", b"abc", 3, 3.0, (1, 2), np.arange(3)]
        assert fingerprint_objects(objects) == fingerprint_objects(list(objects))
        assert fingerprint_objects(objects) != fingerprint_objects(objects[:-1])


# --------------------------------------------------------------------------- #
# DistanceContext core                                                        #
# --------------------------------------------------------------------------- #


class TestDistanceContextCore:
    def test_is_a_distance_measure(self, l2_context, vectors):
        base = L2Distance()
        assert l2_context(vectors[0], vectors[1]) == base(vectors[0], vectors[1])
        # Second evaluation is a store hit: no new base evaluations.
        before = l2_context.distance_evaluations
        l2_context(vectors[1], vectors[0])  # symmetric mirror
        assert l2_context.distance_evaluations == before

    def test_compute_many_mixed_known_unknown(self, l2_context, vectors, rng):
        outsider = rng.normal(size=5)
        values = l2_context.compute_many(vectors[0], [vectors[1], outsider])
        base = L2Distance()
        assert values[0] == base(vectors[0], vectors[1])
        assert values[1] == base(vectors[0], outsider)
        # The outsider pair has no stable key: evaluated again on repeat.
        before = l2_context.distance_evaluations
        l2_context.compute_many(vectors[0], [vectors[1], outsider])
        assert l2_context.distance_evaluations == before + 1

    def test_compute_pairs_caches_known_pairs(self, l2_context, vectors):
        anchors = [vectors[3]] * 5
        objs = vectors[:5]
        first = l2_context.compute_pairs(objs, anchors)
        before = l2_context.distance_evaluations
        second = l2_context.compute_pairs(objs, anchors)
        np.testing.assert_array_equal(first, second)
        assert l2_context.distance_evaluations == before

    def test_pairwise_bit_identical_and_block_backed(self, vectors):
        context = DistanceContext(L2Distance(), vectors)
        reference = pairwise_distances(L2Distance(), vectors)
        cold = context.pairwise(np.arange(len(vectors)))
        np.testing.assert_array_equal(cold, reference)
        evaluations = context.distance_evaluations
        assert evaluations == len(vectors) * (len(vectors) - 1) // 2
        warm = context.pairwise(np.arange(len(vectors)))
        np.testing.assert_array_equal(warm, reference)
        assert context.distance_evaluations == evaluations  # zero new

    def test_cross_reuses_pairwise_entries(self, l2_context, vectors):
        l2_context.pairwise(np.arange(10))
        before = l2_context.distance_evaluations
        cross = l2_context.cross(np.arange(5), np.arange(10))
        # Only the 5 diagonal self-pairs were never evaluated.
        assert l2_context.distance_evaluations == before + 5
        reference = cross_distances(L2Distance(), vectors[:5], vectors[:10])
        np.testing.assert_array_equal(cross, reference)

    def test_matrix_builders_delegate_to_context(self, vectors):
        context = DistanceContext(L2Distance(), vectors)
        matrix = pairwise_distances(context, vectors[:8])
        assert context.distance_evaluations == 8 * 7 // 2
        before = context.distance_evaluations
        again = pairwise_distances(context, vectors[:8])
        np.testing.assert_array_equal(matrix, again)
        assert context.distance_evaluations == before
        cross_distances(context, vectors[:4], vectors[4:8])
        assert context.distance_evaluations == before  # all cached

    def test_parallel_pairwise_matches_serial(self, vectors):
        serial = DistanceContext(L2Distance(), vectors)
        parallel = DistanceContext(L2Distance(), vectors)
        lhs = serial.pairwise(np.arange(len(vectors)))
        rhs = parallel.pairwise(np.arange(len(vectors)), n_jobs=2)
        np.testing.assert_array_equal(lhs, rhs)
        assert serial.distance_evaluations == parallel.distance_evaluations

    def test_save_preserves_suffixless_paths(self, tmp_path, vectors):
        """np.savez would append '.npz' behind our back; save must not."""
        context = DistanceContext(L2Distance(), vectors)
        context.pairwise(np.arange(4))
        path = tmp_path / "store-without-suffix"
        context.save_store(path)
        assert path.is_file()
        fresh = DistanceContext(L2Distance(), vectors)
        fresh.load_store(path)
        assert fresh.distance_evaluations == 0
        np.testing.assert_array_equal(
            fresh.pairwise(np.arange(4)), context.pairwise(np.arange(4))
        )
        assert fresh.distance_evaluations == 0

    def test_parallel_duplicate_queries_match_serial_counts(self, vectors):
        """A query listed twice must not be computed (or charged) twice in
        the pooled path — later occurrences see the store, like serial."""
        serial = DistanceContext(L2Distance(), vectors)
        parallel = DistanceContext(L2Distance(), vectors)
        queries = [vectors[0], vectors[0], vectors[1]]
        targets = [np.arange(10)] * 3
        serial_values, serial_counts = serial.distances_to_many(
            queries, targets, n_jobs=1
        )
        parallel_values, parallel_counts = parallel.distances_to_many(
            queries, targets, n_jobs=2
        )
        # The duplicated query is free, and vectors[1]'s pair with target 0
        # was already evaluated as (0, 1) by the first query (symmetric).
        assert serial_counts == [10, 0, 9]
        assert parallel_counts == serial_counts
        assert parallel.distance_evaluations == serial.distance_evaluations == 19
        for lhs, rhs in zip(serial_values, parallel_values):
            np.testing.assert_array_equal(lhs, rhs)

    def test_distances_to_many_parallel_merges_into_parent_store(self, vectors):
        context = DistanceContext(L2Distance(), vectors)
        serial = DistanceContext(L2Distance(), vectors)
        queries = vectors[:4]
        targets = [np.arange(len(vectors))] * 4
        values, computed = context.distances_to_many(queries, targets, n_jobs=2)
        _, serial_computed = serial.distances_to_many(queries, targets, n_jobs=1)
        # Symmetric cross-query pairs dedupe the same way serially and pooled.
        assert computed == serial_computed == [20, 19, 18, 17]
        # Worker results merged into the parent store: warm repeat is free.
        warm_values, warm_computed = context.distances_to_many(
            queries, targets, n_jobs=2
        )
        assert warm_computed == [0] * 4
        for a, b in zip(values, warm_values):
            np.testing.assert_array_equal(a, b)

    def test_register_extends_universe(self, l2_context, rng):
        fingerprint_before = l2_context.fingerprint
        newcomer = rng.normal(size=5)
        (index,) = l2_context.register([newcomer])
        assert index == l2_context.n_objects - 1
        assert l2_context.fingerprint != fingerprint_before
        assert l2_context.index_of(newcomer) == index
        # Re-registering is a no-op.
        assert l2_context.register([newcomer])[0] == index

    def test_pickle_round_trip_rebuilds_identity_index(self, l2_context, vectors):
        l2_context.pairwise(np.arange(5))
        clone = pickle.loads(pickle.dumps(l2_context))
        # The clone's id map points at the clone's own (copied) objects.
        assert clone.index_of(clone.objects[3]) == 3
        assert clone.index_of(vectors[3]) is None
        before = clone.distance_evaluations
        clone.pairwise(np.arange(5))
        assert clone.distance_evaluations == before  # store survived

    def test_context_rejected_by_parallel_shipping(self, l2_context):
        with pytest.raises(DistanceError, match="DistanceContext"):
            ensure_parallel_safe(l2_context)
        with pytest.raises(DistanceError, match="DistanceContext"):
            ensure_parallel_safe(CountingDistance(l2_context))

    def test_rejects_wrapping_a_context(self, l2_context, vectors):
        with pytest.raises(DistanceError, match="cannot wrap"):
            DistanceContext(l2_context, vectors)

    def test_store_fingerprint_must_match_universe(self, vectors):
        store = DistanceStore(symmetric=True, fingerprint="not-the-universe")
        with pytest.raises(DistanceError, match="fingerprint"):
            DistanceContext(L2Distance(), vectors, store=store)

    def test_asymmetric_store_for_asymmetric_measure(self, rng):
        distributions = [rng.dirichlet(np.ones(4)) for _ in range(8)]
        kl = KLDivergence()
        context = DistanceContext(kl, distributions, symmetric=False)
        matrix = context.pairwise(np.arange(8), symmetric=False)
        reference = pairwise_distances(KLDivergence(), distributions, symmetric=False)
        np.testing.assert_array_equal(matrix, reference)
        # Both directions are distinct entries; both are warm now.
        before = context.distance_evaluations
        assert context.compute(distributions[2], distributions[5]) == matrix[2, 5]
        assert context.compute(distributions[5], distributions[2]) == matrix[5, 2]
        assert context.distance_evaluations == before

    def test_symmetric_build_never_mirrors_into_asymmetric_store(self, rng):
        """A symmetric pairwise request against an asymmetric store must
        only record the directions it actually evaluated — the mirrored
        half would be silently wrong for an asymmetric measure."""
        distributions = [rng.dirichlet(np.ones(4)) for _ in range(6)]
        context = DistanceContext(KLDivergence(), distributions, symmetric=False)
        # symmetric=True is what pairwise_distances defaults to.
        context.pairwise(np.arange(6), symmetric=True)
        reference = pairwise_distances(KLDivergence(), distributions, symmetric=False)
        # The reverse direction was never computed: it must be a store miss
        # that evaluates the true D(j, i), not a mirrored D(i, j).
        assert context.compute(distributions[3], distributions[1]) == reference[3, 1]
        assert context.compute(distributions[1], distributions[3]) == reference[1, 3]


# --------------------------------------------------------------------------- #
# Store persistence through a context                                         #
# --------------------------------------------------------------------------- #


class TestContextPersistence:
    def test_save_load_round_trip_bit_identical(self, tmp_path, vectors):
        context = DistanceContext(L2Distance(), vectors)
        matrix = context.pairwise(np.arange(len(vectors)))
        path = tmp_path / "ctx.npz"
        context.save_store(path)

        fresh = DistanceContext(L2Distance(), [v.copy() for v in vectors])
        fresh.load_store(path)
        warm = fresh.pairwise(np.arange(len(vectors)))
        np.testing.assert_array_equal(warm, matrix)
        assert fresh.distance_evaluations == 0

    def test_load_refuses_mismatched_dataset(self, tmp_path, vectors, rng):
        context = DistanceContext(L2Distance(), vectors)
        context.pairwise(np.arange(4))
        path = tmp_path / "ctx.npz"
        context.save_store(path)
        reordered = DistanceContext(L2Distance(), vectors[::-1])
        with pytest.raises(DistanceError, match="different dataset"):
            reordered.load_store(path)
        different = DistanceContext(L2Distance(), [rng.normal(size=5) for _ in range(3)])
        with pytest.raises(DistanceError, match="different dataset"):
            different.load_store(path)

    def test_partial_stores_merge_through_context(self, tmp_path, vectors):
        first = DistanceContext(L2Distance(), vectors)
        first.pairwise(np.arange(8))
        path_a = tmp_path / "a.npz"
        first.save_store(path_a)

        second = DistanceContext(L2Distance(), vectors)
        second.cross(np.arange(8, 12), np.arange(8))
        path_b = tmp_path / "b.npz"
        second.save_store(path_b)

        combined = DistanceContext(L2Distance(), vectors)
        combined.load_store(path_a)
        combined.load_store(path_b)
        before = combined.distance_evaluations
        np.testing.assert_array_equal(
            combined.pairwise(np.arange(8)), first.pairwise(np.arange(8))
        )
        np.testing.assert_array_equal(
            combined.cross(np.arange(8, 12), np.arange(8)),
            second.cross(np.arange(8, 12), np.arange(8)),
        )
        assert combined.distance_evaluations == before


# --------------------------------------------------------------------------- #
# Pipeline integration: train -> embed -> retrieve                            #
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def ts_split():
    database, queries = make_timeseries_dataset(
        n_database=60, n_queries=10, n_seeds=6, length=30, n_dims=1, seed=5
    )
    return database, queries


_PIPE_CONFIG = TrainingConfig(
    n_candidates=25,
    n_training_objects=25,
    n_triples=400,
    n_rounds=6,
    classifiers_per_round=15,
    intervals_per_candidate=3,
    kmax=5,
    seed=7,
)


def _run_pipeline(distance, database, queries):
    """A table1-shaped workload: ground truth, train, embed, retrieve."""
    ground_truth = ground_truth_neighbors(distance, database, queries, k_max=5)
    tables = build_training_tables(
        distance, database, n_candidates=25, n_training_objects=25, seed=3
    )
    model = BoostMapTrainer(distance, database, _PIPE_CONFIG, tables=tables).train().model
    database_vectors = model.embed_many(list(database))
    retriever = FilterRefineRetriever(
        distance, database, model, database_vectors=database_vectors
    )
    results = retriever.query_many(list(queries), k=3, p=10)
    return ground_truth, tables, database_vectors, results


class TestPipelineThroughContext:
    def test_warm_run_costs_zero_and_is_bit_identical(self, tmp_path, ts_split):
        database, queries = ts_split
        universe = list(database) + list(queries)

        cold = DistanceContext(ConstrainedDTW(), universe)
        gt_cold, tables_cold, vectors_cold, results_cold = _run_pipeline(
            cold, database, queries
        )
        assert cold.distance_evaluations > 0
        path = tmp_path / "pipeline.npz"
        cold.save_store(path)

        warm = DistanceContext(ConstrainedDTW(), universe)
        warm.load_store(path)
        gt_warm, tables_warm, vectors_warm, results_warm = _run_pipeline(
            warm, database, queries
        )
        # The acceptance criterion: zero exact evaluations for cached pairs.
        assert warm.distance_evaluations == 0
        assert tables_warm.distance_evaluations == 0
        np.testing.assert_array_equal(gt_warm.indices, gt_cold.indices)
        np.testing.assert_array_equal(gt_warm.distances, gt_cold.distances)
        np.testing.assert_array_equal(
            tables_warm.pool_to_pool, tables_cold.pool_to_pool
        )
        np.testing.assert_array_equal(vectors_warm, vectors_cold)
        _assert_results_identical(results_warm, results_cold)
        assert all(r.refine_distance_computations == 0 for r in results_warm)

    def test_l2_context_pipeline_bit_identical_to_context_free(
        self, gaussian_split
    ):
        """With a direction-faithful measure the whole pipeline matches
        the context-free path bit for bit, vectors included."""
        database, queries = gaussian_split.database, gaussian_split.queries
        free = _run_pipeline(L2Distance(), database, queries)
        context = DistanceContext(L2Distance(), list(database) + list(queries))
        ctx = _run_pipeline(context, database, queries)
        np.testing.assert_array_equal(free[0].indices, ctx[0].indices)
        np.testing.assert_array_equal(free[0].distances, ctx[0].distances)
        np.testing.assert_array_equal(free[1].pool_to_pool, ctx[1].pool_to_pool)
        np.testing.assert_array_equal(free[2], ctx[2])
        _assert_results_identical(free[3], ctx[3])

    def test_dtw_context_retrieval_identical_to_context_free(self, ts_split):
        database, queries = ts_split
        free = _run_pipeline(ConstrainedDTW(), database, queries)
        context = DistanceContext(ConstrainedDTW(), list(database) + list(queries))
        ctx = _run_pipeline(context, database, queries)
        np.testing.assert_array_equal(free[0].indices, ctx[0].indices)
        np.testing.assert_array_equal(free[0].distances, ctx[0].distances)
        np.testing.assert_array_equal(free[1].pool_to_pool, ctx[1].pool_to_pool)
        _assert_results_identical(free[3], ctx[3])

    def test_refine_charges_only_fresh_pairs(self, ts_split):
        database, queries = ts_split
        context = DistanceContext(ConstrainedDTW(), list(database) + list(queries))
        # The ground-truth scan warms every (query, database) pair, so the
        # refine step afterwards is free.
        ground_truth_neighbors(context, database, queries, k_max=5)
        from repro.embeddings.lipschitz import build_lipschitz_embedding

        embedding = build_lipschitz_embedding(
            context, database, dim=4, set_size=1, seed=3
        )
        retriever = FilterRefineRetriever(context, database, embedding)
        before = context.distance_evaluations
        results = retriever.query_many(list(queries), k=3, p=10)
        assert context.distance_evaluations == before
        assert all(r.refine_distance_computations == 0 for r in results)
        assert retriever.refine_distance_evaluations == 0
        # Context-free comparison: identical neighbors, nominal costs.
        plain = FilterRefineRetriever(
            ConstrainedDTW(),
            database,
            build_lipschitz_embedding(ConstrainedDTW(), database, dim=4, set_size=1, seed=3),
        )
        _assert_results_identical(results, plain.query_many(list(queries), k=3, p=10))

    def test_sharded_context_matches_unsharded(self, ts_split):
        database, queries = ts_split
        universe = list(database) + list(queries)
        from repro.embeddings.lipschitz import build_lipschitz_embedding

        flat_ctx = DistanceContext(ConstrainedDTW(), universe)
        flat_embedding = build_lipschitz_embedding(
            flat_ctx, database, dim=4, set_size=1, seed=3
        )
        flat = FilterRefineRetriever(flat_ctx, database, flat_embedding)
        flat_results = flat.query_many(list(queries), k=3, p=12)

        sharded_ctx = DistanceContext(ConstrainedDTW(), universe)
        sharded_embedding = build_lipschitz_embedding(
            sharded_ctx, database, dim=4, set_size=1, seed=3
        )
        sharded = ShardedRetriever(
            sharded_ctx, database, sharded_embedding, n_shards=3
        )
        sharded_results = sharded.query_many(list(queries), k=3, p=12)
        _assert_results_identical(flat_results, sharded_results)
        assert [r.refine_distance_computations for r in flat_results] == [
            r.refine_distance_computations for r in sharded_results
        ]
        assert (
            flat.refine_distance_evaluations == sharded.refine_distance_evaluations
        )

    def test_brute_force_through_context(self, ts_split):
        database, queries = ts_split
        context = DistanceContext(ConstrainedDTW(), list(database) + list(queries))
        retriever = BruteForceRetriever(context, database)
        plain = BruteForceRetriever(ConstrainedDTW(), database)
        for query in list(queries)[:3]:
            idx_ctx, dist_ctx = retriever.query(query, k=4)
            idx_plain, dist_plain = plain.query(query, k=4)
            np.testing.assert_array_equal(idx_ctx, idx_plain)
            np.testing.assert_array_equal(dist_ctx, dist_plain)
        first_pass = retriever.distance_computations
        assert first_pass == 3 * len(database)
        # Second pass over the same queries is fully cached.
        retriever.query_many(list(queries)[:3], k=4)
        assert retriever.distance_computations == first_pass

    def test_retriever_requires_database_in_universe(self, ts_split, rng):
        database, queries = ts_split
        context = DistanceContext(
            ConstrainedDTW(), [rng.normal(size=(30, 1)) for _ in range(4)]
        )
        from repro.embeddings.lipschitz import build_lipschitz_embedding
        from repro.exceptions import RetrievalError

        embedding = build_lipschitz_embedding(
            ConstrainedDTW(), database, dim=2, set_size=1, seed=0
        )
        with pytest.raises(RetrievalError, match="universe"):
            FilterRefineRetriever(context, database, embedding)


class TestCompareMethodsStore:
    @pytest.mark.slow
    def test_compare_methods_store_reuse(self, tmp_path):
        from repro.experiments.config import TINY
        from repro.experiments.runner import compare_methods

        database, queries = make_timeseries_dataset(
            n_database=TINY.database_size,
            n_queries=TINY.n_queries,
            n_seeds=8,
            length=30,
            n_dims=1,
            seed=11,
        )
        scale = TINY.with_overrides(dims=(2, 4), ks=(1, 3), accuracies=(0.9,), kmax=3)
        path = tmp_path / "cmp.npz"
        cold = compare_methods(
            ConstrainedDTW(), database, queries, scale,
            methods=("FastMap", "Se-QS"), seed=0, store_path=path,
        )
        assert path.is_file()
        context = DistanceContext(
            ConstrainedDTW(), list(database) + list(queries)
        )
        context.load_store(path)
        warm = compare_methods(
            context, database, queries, scale,
            methods=("FastMap", "Se-QS"), seed=0, store_path=path,
        )
        assert context.distance_evaluations == 0
        assert warm.preprocessing_distance_evaluations == 0
        for tag in ("FastMap", "Se-QS"):
            assert warm.method(tag).costs == cold.method(tag).costs

    @pytest.mark.slow
    def test_stale_store_warns_and_runs_cold(self, tmp_path):
        from repro.experiments.config import TINY
        from repro.experiments.runner import compare_methods

        database, queries = make_timeseries_dataset(
            n_database=TINY.database_size,
            n_queries=TINY.n_queries,
            n_seeds=8,
            length=30,
            n_dims=1,
            seed=11,
        )
        scale = TINY.with_overrides(dims=(2,), ks=(1,), accuracies=(0.9,), kmax=3)
        path = tmp_path / "stale.npz"
        # A store persisted for a *different* dataset (wrong fingerprint).
        stale = DistanceStore(symmetric=True, fingerprint="some-other-dataset")
        stale.put(0, 1, 1.0)
        stale.save(path)
        with pytest.warns(RuntimeWarning, match="ignoring distance store"):
            result = compare_methods(
                ConstrainedDTW(), database, queries, scale,
                methods=("FastMap",), seed=0, store_path=path,
            )
        assert result.method("FastMap").costs
        # The unusable file was overwritten with the fresh store.
        loaded = DistanceStore.load(path)
        assert loaded.fingerprint != "some-other-dataset"
