"""Tests for the distance-measure framework (base classes, counting, caching)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.distances import (
    CachedDistance,
    CountingDistance,
    FunctionDistance,
    L1Distance,
    L2Distance,
)
from repro.exceptions import DistanceError


def _content_key(arr):
    """A stable (content-based) cache key that survives pickling."""
    return tuple(np.asarray(arr).ravel())


class TestFunctionDistance:
    def test_wraps_callable(self):
        dist = FunctionDistance(lambda a, b: abs(a - b), name="abs-diff")
        assert dist(3, 5) == 2.0
        assert dist.name == "abs-diff"
        assert dist.is_metric is False

    def test_default_name_from_function(self):
        def my_distance(a, b):
            return 0.0

        assert FunctionDistance(my_distance).name == "my_distance"

    def test_rejects_non_callable(self):
        with pytest.raises(DistanceError):
            FunctionDistance("not callable")

    def test_metric_flag_propagates(self):
        dist = FunctionDistance(lambda a, b: abs(a - b), is_metric=True)
        assert dist.is_metric is True


class TestCountingDistance:
    def test_counts_calls(self):
        counting = CountingDistance(L2Distance())
        for _ in range(5):
            counting([0.0, 0.0], [1.0, 1.0])
        assert counting.calls == 5

    def test_reset_returns_previous_count(self):
        counting = CountingDistance(L2Distance())
        counting([0.0], [1.0])
        assert counting.reset() == 1
        assert counting.calls == 0

    def test_value_matches_base(self):
        base = L2Distance()
        counting = CountingDistance(base)
        assert counting([1.0, 2.0], [4.0, 6.0]) == base([1.0, 2.0], [4.0, 6.0])

    def test_requires_distance_measure(self):
        with pytest.raises(DistanceError):
            CountingDistance(lambda a, b: 0.0)

    def test_metric_flag_propagates(self):
        assert CountingDistance(L2Distance()).is_metric is True


def _identity_cached(base, **kwargs):
    """Build an explicitly identity-keyed cache (single-process only)."""
    return CachedDistance(base, key=id, **kwargs)


class TestCachedDistance:
    def test_cache_hit_avoids_recomputation(self):
        counting = CountingDistance(L1Distance())
        cached = _identity_cached(counting)
        x, y = np.array([0.0, 0.0]), np.array([1.0, 2.0])
        first = cached(x, y)
        second = cached(x, y)
        assert first == second
        assert counting.calls == 1
        assert cached.hits == 1
        assert cached.misses == 1

    def test_symmetric_cache_shares_both_orders(self):
        counting = CountingDistance(L1Distance())
        cached = _identity_cached(counting, symmetric=True)
        x, y = np.array([0.0]), np.array([3.0])
        cached(x, y)
        cached(y, x)
        assert counting.calls == 1

    def test_asymmetric_cache_keeps_orders_separate(self):
        counting = CountingDistance(L1Distance())
        cached = _identity_cached(counting, symmetric=False)
        x, y = np.array([0.0]), np.array([3.0])
        cached(x, y)
        cached(y, x)
        assert counting.calls == 2

    def test_bare_default_key_raises_pointing_at_context(self):
        """The bare-id() default was removed: construction fails hard."""
        with pytest.raises(DistanceError, match="DistanceContext"):
            CachedDistance(L1Distance())
        # An explicit key — stable or even id — constructs fine.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            CachedDistance(L1Distance(), key=_content_key)
            CachedDistance(L1Distance(), key=id)

    def test_custom_key_function(self):
        counting = CountingDistance(L1Distance())
        cached = CachedDistance(counting, key=lambda arr: tuple(arr))
        cached(np.array([1.0]), np.array([2.0]))
        # Different array objects with identical contents hit the cache.
        cached(np.array([1.0]), np.array([2.0]))
        assert counting.calls == 1

    def test_clear(self):
        cached = _identity_cached(L1Distance())
        x, y = np.array([0.0]), np.array([1.0])
        cached(x, y)
        cached.clear()
        assert len(cached) == 0
        assert cached.hits == 0 and cached.misses == 0

    def test_requires_distance_measure(self):
        with pytest.raises(DistanceError):
            CachedDistance(lambda a, b: 0.0)

    def test_identity_keyed_cache_flagged_and_unpicklable(self):
        """Identity (key=id) keys cannot survive a process boundary: unpickled
        object copies get fresh ids (the cache goes dead) and reused ids can
        collide with stale entries — so pickling must fail loudly."""
        import pickle

        cached = _identity_cached(L1Distance())
        assert cached.uses_identity_keys
        with pytest.raises(DistanceError, match="key=id"):
            pickle.dumps(cached)

    def test_stable_keyed_cache_picklable(self):
        import pickle

        cached = CachedDistance(L1Distance(), key=_content_key)
        assert not cached.uses_identity_keys
        x, y = np.array([0.0]), np.array([2.0])
        cached(x, y)
        clone = pickle.loads(pickle.dumps(cached))
        assert clone(np.array([0.0]), np.array([2.0])) == cached(x, y)
        assert clone.hits >= 1  # the warmed entry survived the round-trip

    def test_identity_keyed_cache_rejected_by_parallel_matrix(self):
        from repro.distances import pairwise_distances

        cached = _identity_cached(L1Distance())
        objects = [np.array([float(i)]) for i in range(6)]
        with pytest.raises(DistanceError, match="n_jobs"):
            pairwise_distances(cached, objects, n_jobs=2)
        # Serial builds remain unaffected.
        matrix = pairwise_distances(cached, objects)
        assert matrix.shape == (6, 6)
