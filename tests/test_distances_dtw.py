"""Tests for constrained Dynamic Time Warping."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import ConstrainedDTW, L2Distance, dtw_distance
from repro.exceptions import DistanceError


def _series(values):
    return np.asarray(values, dtype=float).reshape(-1, 1)


class TestDTWBasics:
    def test_identical_series_distance_zero(self):
        x = _series([1, 2, 3, 4, 5])
        assert dtw_distance(x, x) == 0.0

    def test_symmetric(self):
        rng = np.random.default_rng(0)
        x, y = rng.normal(size=(12, 2)), rng.normal(size=(15, 2))
        assert dtw_distance(x, y) == pytest.approx(dtw_distance(y, x))

    def test_non_negative(self):
        rng = np.random.default_rng(1)
        for _ in range(5):
            x, y = rng.normal(size=(10, 1)), rng.normal(size=(10, 1))
            assert dtw_distance(x, y) >= 0.0

    def test_handles_different_lengths(self):
        x = _series([0, 1, 2, 3, 4, 5, 6, 7])
        y = _series([0, 2, 4, 6])
        assert np.isfinite(dtw_distance(x, y))

    def test_warping_beats_lockstep_on_shifted_series(self):
        # A time-shifted copy should be much closer under DTW than under the
        # lockstep Euclidean distance.
        t = np.linspace(0, 4 * np.pi, 60)
        x = _series(np.sin(t))
        y = _series(np.sin(t + 0.6))
        lockstep = float(np.abs(x - y).sum())
        warped = dtw_distance(x, y, band_fraction=0.2)
        assert warped < lockstep

    def test_1d_input_accepted(self):
        assert dtw_distance([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(DistanceError):
            dtw_distance(np.zeros((5, 2)), np.zeros((5, 3)))

    def test_empty_series_rejected(self):
        with pytest.raises(DistanceError):
            dtw_distance(np.zeros((0, 1)), np.zeros((5, 1)))

    def test_invalid_band_fraction_rejected(self):
        with pytest.raises(DistanceError):
            dtw_distance(_series([1, 2]), _series([1, 2]), band_fraction=1.5)


class TestBandConstraint:
    def test_band_zero_equals_lockstep_for_equal_lengths(self):
        rng = np.random.default_rng(2)
        x, y = rng.normal(size=(20, 1)), rng.normal(size=(20, 1))
        banded = dtw_distance(x, y, band_width=0)
        lockstep = float(np.sqrt(((x - y) ** 2).sum(axis=1)).sum())
        assert banded == pytest.approx(lockstep)

    def test_wider_band_never_increases_distance(self):
        rng = np.random.default_rng(3)
        x, y = rng.normal(size=(25, 2)), rng.normal(size=(25, 2))
        narrow = dtw_distance(x, y, band_width=1)
        medium = dtw_distance(x, y, band_width=4)
        wide = dtw_distance(x, y, band_width=25)
        assert wide <= medium <= narrow

    def test_band_expands_to_length_difference(self):
        # Even with band_width=0 a path must exist when lengths differ.
        x = _series(range(10))
        y = _series(range(15))
        assert np.isfinite(dtw_distance(x, y, band_width=0))

    def test_unconstrained_when_both_band_args_none(self):
        x = _series([0, 0, 0, 5])
        y = _series([5, 0, 0, 0])
        unconstrained = dtw_distance(x, y, band_fraction=None, band_width=None)
        constrained = dtw_distance(x, y, band_width=1)
        assert unconstrained <= constrained


class TestConstrainedDTWMeasure:
    def test_declares_non_metric(self):
        assert ConstrainedDTW().is_metric is False

    def test_triangle_inequality_can_fail(self):
        # A concrete violation: warping lets the short series z align cheaply
        # with both x and y, while x and y are forced to pay at every step.
        dtw = ConstrainedDTW(band_fraction=1.0)
        x = _series([0, 0, 0, 0])
        y = _series([1, 1, 1, 1])
        z = _series([0, 1])
        d_xy = dtw(x, y)
        d_xz = dtw(x, z)
        d_zy = dtw(z, y)
        assert d_xy > d_xz + d_zy + 1e-9

    def test_normalize_divides_by_length(self):
        x = _series([0, 1, 2, 3])
        y = _series([4, 5, 6, 7])
        raw = ConstrainedDTW(normalize=False)(x, y)
        normalized = ConstrainedDTW(normalize=True)(x, y)
        assert normalized == pytest.approx(raw / 4.0)

    def test_invalid_band_rejected(self):
        with pytest.raises(DistanceError):
            ConstrainedDTW(band_fraction=-0.1)
        with pytest.raises(DistanceError):
            ConstrainedDTW(band_width=-1)

    def test_variants_of_same_seed_are_closer(self, timeseries_split, dtw):
        """Series generated from the same seed pattern should be closer."""
        database = timeseries_split.database
        labels = database.labels
        # Pick one object per of two different labels and one same-label pair.
        label_values = np.unique(labels)
        assert label_values.shape[0] >= 2
        first_label = label_values[0]
        same = np.where(labels == first_label)[0][:2]
        other = np.where(labels != first_label)[0][0]
        if same.shape[0] < 2:
            pytest.skip("not enough same-seed series in fixture")
        d_same = dtw(database[int(same[0])], database[int(same[1])])
        d_diff = dtw(database[int(same[0])], database[int(other)])
        assert d_same < d_diff
