"""Tests for Lp, weighted L1 and query-sensitive L1 distances."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import (
    L1Distance,
    L2Distance,
    LpDistance,
    QuerySensitiveL1,
    WeightedL1Distance,
)
from repro.exceptions import DistanceError


class TestLpDistance:
    def test_l1_value(self):
        assert L1Distance()([1.0, 2.0], [3.0, 0.0]) == 4.0

    def test_l2_value(self):
        assert L2Distance()([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_linf(self):
        dist = LpDistance(p=np.inf)
        assert dist([0.0, 0.0], [3.0, -7.0]) == 7.0

    def test_fractional_p_not_metric(self):
        assert LpDistance(p=0.5).is_metric is False
        assert LpDistance(p=1.0).is_metric is True

    def test_identity(self):
        assert L2Distance()([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]) == 0.0

    def test_symmetry(self):
        x, y = [1.0, -2.0, 0.5], [0.0, 4.0, 2.5]
        assert L1Distance()(x, y) == L1Distance()(y, x)

    def test_rejects_non_positive_p(self):
        with pytest.raises(DistanceError):
            LpDistance(p=0)

    def test_rejects_length_mismatch(self):
        with pytest.raises(DistanceError):
            L2Distance()([1.0, 2.0], [1.0])

    def test_rejects_matrix_input(self):
        with pytest.raises(DistanceError):
            L2Distance()(np.zeros((2, 2)), np.zeros((2, 2)))


class TestWeightedL1:
    def test_matches_manual_computation(self):
        dist = WeightedL1Distance([1.0, 2.0, 0.5])
        assert dist([0.0, 0.0, 0.0], [1.0, 1.0, 2.0]) == pytest.approx(1 + 2 + 1)

    def test_zero_weights_ignore_coordinates(self):
        dist = WeightedL1Distance([0.0, 1.0])
        assert dist([100.0, 1.0], [0.0, 1.0]) == 0.0

    def test_batch_matches_scalar(self):
        dist = WeightedL1Distance([1.0, 3.0])
        x = np.array([0.5, 1.0])
        others = np.array([[0.0, 0.0], [1.0, 2.0], [0.5, 1.0]])
        batch = dist.batch(x, others)
        expected = [dist(x, row) for row in others]
        assert np.allclose(batch, expected)

    def test_rejects_negative_weights(self):
        with pytest.raises(DistanceError):
            WeightedL1Distance([1.0, -1.0])

    def test_rejects_dimension_mismatch(self):
        dist = WeightedL1Distance([1.0, 1.0])
        with pytest.raises(DistanceError):
            dist([1.0], [2.0])

    def test_dim_property(self):
        assert WeightedL1Distance([1.0, 2.0, 3.0]).dim == 3


class TestQuerySensitiveL1:
    def test_weights_depend_on_query(self):
        # Weight the first coordinate only when the query's first coordinate
        # is below 0.5, otherwise weight the second coordinate only.
        def weight_fn(q):
            return np.array([1.0, 0.0]) if q[0] < 0.5 else np.array([0.0, 1.0])

        dist = QuerySensitiveL1(weight_fn)
        assert dist([0.0, 0.0], [1.0, 5.0]) == 1.0
        assert dist([1.0, 0.0], [2.0, 5.0]) == 5.0

    def test_asymmetry(self):
        def weight_fn(q):
            return np.array([1.0, 0.0]) if q[0] < 0.5 else np.array([0.0, 1.0])

        dist = QuerySensitiveL1(weight_fn)
        a, b = np.array([0.0, 0.0]), np.array([1.0, 5.0])
        assert dist(a, b) != dist(b, a)
        assert dist.is_metric is False

    def test_batch_matches_scalar(self):
        weight_fn = lambda q: np.abs(q) + 0.1
        dist = QuerySensitiveL1(weight_fn)
        q = np.array([0.3, -0.7, 1.0])
        others = np.random.default_rng(0).normal(size=(6, 3))
        assert np.allclose(dist.batch(q, others), [dist(q, row) for row in others])

    def test_rejects_bad_weight_shapes(self):
        dist = QuerySensitiveL1(lambda q: np.ones(q.shape[0] + 1))
        with pytest.raises(DistanceError):
            dist([1.0, 2.0], [0.0, 0.0])

    def test_rejects_negative_weights(self):
        dist = QuerySensitiveL1(lambda q: -np.ones_like(q))
        with pytest.raises(DistanceError):
            dist([1.0], [0.0])

    def test_rejects_non_callable(self):
        with pytest.raises(DistanceError):
            QuerySensitiveL1("nope")
