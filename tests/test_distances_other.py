"""Tests for the edit, KL, chamfer and Hausdorff distances and matrix helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import (
    ChamferDistance,
    CountingDistance,
    EditDistance,
    HausdorffDistance,
    JensenShannonDistance,
    KLDivergence,
    L2Distance,
    SymmetricKL,
    WeightedEditDistance,
    cross_distances,
    pairwise_distances,
)
from repro.exceptions import DistanceError


class TestEditDistance:
    def test_known_values(self):
        edit = EditDistance()
        assert edit("kitten", "sitting") == 3
        assert edit("flaw", "lawn") == 2
        assert edit("", "abc") == 3
        assert edit("abc", "") == 3
        assert edit("same", "same") == 0

    def test_symmetry(self):
        edit = EditDistance()
        assert edit("ACGT", "AGT") == edit("AGT", "ACGT")

    def test_works_on_token_lists(self):
        edit = EditDistance()
        assert edit(["a", "b", "c"], ["a", "c"]) == 1

    def test_rejects_bad_types(self):
        with pytest.raises(DistanceError):
            EditDistance()(12345, "abc")

    def test_is_metric(self):
        assert EditDistance().is_metric is True


class TestWeightedEditDistance:
    def test_custom_substitution_cost(self):
        weighted = WeightedEditDistance(substitution_costs={("a", "b"): 0.1})
        assert weighted("a", "b") == pytest.approx(0.1)
        assert weighted("a", "c") == pytest.approx(1.0)

    def test_substitution_table_checked_both_ways(self):
        weighted = WeightedEditDistance(substitution_costs={("a", "b"): 0.2})
        assert weighted("b", "a") == pytest.approx(0.2)

    def test_indel_costs(self):
        weighted = WeightedEditDistance(insertion_cost=2.0, deletion_cost=3.0)
        assert weighted("", "xy") == pytest.approx(4.0)
        assert weighted("xy", "") == pytest.approx(6.0)

    def test_reduces_to_levenshtein_with_unit_costs(self):
        plain = EditDistance()
        weighted = WeightedEditDistance()
        for a, b in [("kitten", "sitting"), ("abc", "abd"), ("", "xyz")]:
            assert weighted(a, b) == plain(a, b)

    def test_negative_costs_rejected(self):
        with pytest.raises(DistanceError):
            WeightedEditDistance(insertion_cost=-1)
        with pytest.raises(DistanceError):
            WeightedEditDistance(substitution_costs={("a", "b"): -0.5})


class TestDivergences:
    def test_kl_zero_for_identical(self):
        assert KLDivergence()([0.2, 0.3, 0.5], [0.2, 0.3, 0.5]) == pytest.approx(0.0, abs=1e-8)

    def test_kl_asymmetric(self):
        kl = KLDivergence()
        p, q = [0.8, 0.15, 0.05], [0.1, 0.1, 0.8]
        assert abs(kl(p, q) - kl(q, p)) > 1e-6

    def test_kl_non_negative(self):
        rng = np.random.default_rng(0)
        kl = KLDivergence()
        for _ in range(10):
            p = rng.random(5)
            q = rng.random(5)
            assert kl(p, q) >= -1e-12

    def test_kl_accepts_unnormalised_histograms(self):
        kl = KLDivergence()
        assert kl([2, 3, 5], [0.2, 0.3, 0.5]) == pytest.approx(0.0, abs=1e-6)

    def test_kl_rejects_negative_mass(self):
        with pytest.raises(DistanceError):
            KLDivergence()([-0.1, 1.1], [0.5, 0.5])

    def test_kl_rejects_length_mismatch(self):
        with pytest.raises(DistanceError):
            KLDivergence()([0.5, 0.5], [1.0])

    def test_symmetric_kl_is_symmetric(self):
        skl = SymmetricKL()
        p, q = [0.7, 0.2, 0.1], [0.3, 0.3, 0.4]
        assert skl(p, q) == pytest.approx(skl(q, p))

    def test_jensen_shannon_bounded_and_symmetric(self):
        js = JensenShannonDistance()
        p, q = [1.0, 0.0, 0.0], [0.0, 0.0, 1.0]
        value = js(p, q)
        assert value == pytest.approx(js(q, p))
        assert 0.0 <= value <= np.sqrt(np.log(2)) + 1e-9

    def test_jensen_shannon_is_declared_metric(self):
        assert JensenShannonDistance().is_metric is True
        assert KLDivergence().is_metric is False


class TestPointSetDistances:
    def test_chamfer_zero_for_identical_sets(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]])
        assert ChamferDistance()(points, points) == 0.0

    def test_chamfer_symmetric_variant(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        chamfer = ChamferDistance()
        assert chamfer(a, b) == pytest.approx(chamfer(b, a))

    def test_directed_chamfer_asymmetric(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[0.0, 0.0], [10.0, 0.0]])
        directed = ChamferDistance(directed=True)
        assert directed(a, b) == 0.0
        assert directed(b, a) == 5.0

    def test_chamfer_dimension_mismatch(self):
        with pytest.raises(DistanceError):
            ChamferDistance()(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_hausdorff_known_value(self):
        a = np.array([[0.0, 0.0], [1.0, 0.0]])
        b = np.array([[0.0, 0.0], [5.0, 0.0]])
        assert HausdorffDistance()(a, b) == 4.0

    def test_hausdorff_symmetric_is_metric_flag(self):
        assert HausdorffDistance().is_metric is True
        assert HausdorffDistance(directed=True).is_metric is False

    def test_hausdorff_empty_rejected(self):
        with pytest.raises(DistanceError):
            HausdorffDistance()(np.zeros((0, 2)), np.zeros((3, 2)))


class TestMatrixHelpers:
    def test_pairwise_symmetric_counts(self):
        counting = CountingDistance(L2Distance())
        objects = [np.array([float(i), 0.0]) for i in range(6)]
        matrix = pairwise_distances(counting, objects, symmetric=True)
        assert matrix.shape == (6, 6)
        assert counting.calls == 6 * 5 // 2
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 0.0)

    def test_pairwise_asymmetric_evaluates_everything(self):
        counting = CountingDistance(L2Distance())
        objects = [np.array([float(i)]) for i in range(4)]
        pairwise_distances(counting, objects, symmetric=False)
        assert counting.calls == 16

    def test_cross_distances_shape_and_values(self):
        l2 = L2Distance()
        rows = [np.array([0.0, 0.0]), np.array([1.0, 1.0])]
        cols = [np.array([1.0, 0.0]), np.array([0.0, 1.0]), np.array([2.0, 2.0])]
        matrix = cross_distances(l2, rows, cols)
        assert matrix.shape == (2, 3)
        assert matrix[0, 0] == pytest.approx(1.0)
        assert matrix[1, 2] == pytest.approx(np.sqrt(2))

    def test_progress_callback_invoked(self):
        calls = []
        l2 = L2Distance()
        objects = [np.array([float(i)]) for i in range(5)]
        pairwise_distances(l2, objects, progress=lambda done, total: calls.append((done, total)))
        assert calls[-1] == (5, 5)

    def test_requires_distance_measure(self):
        with pytest.raises(DistanceError):
            pairwise_distances(lambda a, b: 0.0, [1, 2, 3])
        with pytest.raises(DistanceError):
            cross_distances(lambda a, b: 0.0, [1], [2])
