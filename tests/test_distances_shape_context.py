"""Tests for the Shape Context distance pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import ShapeContextDistance
from repro.distances.shape_context import (
    ShapeContextExtractor,
    sample_edge_points,
)
from repro.exceptions import DistanceError


@pytest.fixture(scope="module")
def sc():
    return ShapeContextDistance(n_points=16)


class TestEdgeSampling:
    def test_returns_requested_count(self, digit_images):
        points = sample_edge_points(digit_images[3][0], n_points=20)
        assert points.shape == (20, 2)

    def test_points_lie_on_ink(self, digit_images):
        image = digit_images[7][0]
        points = sample_edge_points(image, n_points=15)
        rows = np.clip(np.round(points[:, 0]).astype(int), 0, image.shape[0] - 1)
        cols = np.clip(np.round(points[:, 1]).astype(int), 0, image.shape[1] - 1)
        assert np.all(image[rows, cols] > 0.1)

    def test_blank_image_returns_center(self):
        blank = np.zeros((28, 28))
        points = sample_edge_points(blank, n_points=5)
        assert points.shape == (5, 2)
        assert np.allclose(points, [[14.0, 14.0]] * 5)

    def test_requires_positive_count(self):
        with pytest.raises(DistanceError):
            sample_edge_points(np.zeros((10, 10)), n_points=0)

    def test_oversampling_small_shapes(self):
        tiny = np.zeros((10, 10))
        tiny[4:6, 4:6] = 1.0
        points = sample_edge_points(tiny, n_points=30)
        assert points.shape == (30, 2)


class TestExtractor:
    def test_histograms_are_normalised(self, digit_images):
        extractor = ShapeContextExtractor(n_points=18)
        _, histograms = extractor.extract(digit_images[2][0])
        assert histograms.shape == (18, 5 * 12)
        assert np.allclose(histograms.sum(axis=1), 1.0)

    def test_histograms_non_negative(self, digit_images):
        extractor = ShapeContextExtractor(n_points=12)
        _, histograms = extractor.extract(digit_images[5][0])
        assert np.all(histograms >= 0)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(DistanceError):
            ShapeContextExtractor(n_points=1)
        with pytest.raises(DistanceError):
            ShapeContextExtractor(n_radial_bins=0)

    def test_scale_invariance_of_histograms(self):
        # Scaling all point coordinates should not change the histograms
        # because distances are normalised by the mean pairwise distance.
        rng = np.random.default_rng(0)
        points = rng.uniform(0, 28, size=(20, 2))
        extractor = ShapeContextExtractor(n_points=20)
        h1 = extractor.histograms(points)
        h2 = extractor.histograms(points * 3.0)
        assert np.allclose(h1, h2)


class TestShapeContextDistance:
    def test_self_distance_zero(self, sc, digit_images):
        image = digit_images[0][0]
        assert sc(image, image) == pytest.approx(0.0, abs=1e-9)

    def test_symmetric(self, sc, digit_images):
        a, b = digit_images[1][0], digit_images[8][0]
        assert sc(a, b) == pytest.approx(sc(b, a))

    def test_non_negative(self, sc, digit_images):
        for d in (0, 4, 9):
            assert sc(digit_images[d][0], digit_images[d][1]) >= 0.0

    def test_same_digit_closer_than_different_digit(self, sc, digit_images):
        """Intra-class distances should usually be smaller than inter-class.

        We compare averages over a few pairs to keep the test robust to the
        occasional ambiguous pair.
        """
        same = np.mean(
            [sc(digit_images[d][0], digit_images[d][1]) for d in (0, 1, 3, 7)]
        )
        different = np.mean(
            [
                sc(digit_images[0][0], digit_images[1][0]),
                sc(digit_images[3][0], digit_images[8][0]),
                sc(digit_images[7][0], digit_images[2][0]),
                sc(digit_images[1][0], digit_images[5][0]),
            ]
        )
        assert same < different

    def test_declares_non_metric(self, sc):
        assert sc.is_metric is False

    def test_rejects_non_2d_images(self, sc):
        with pytest.raises(DistanceError):
            sc(np.zeros(10), np.zeros(10))

    def test_feature_cache_reused(self, digit_images):
        dist = ShapeContextDistance(n_points=12, cache_features=True)
        a, b = digit_images[2][0], digit_images[2][1]
        dist(a, b)
        assert len(dist._feature_cache) == 2
        dist(a, b)
        assert len(dist._feature_cache) == 2
        dist.clear_cache()
        assert len(dist._feature_cache) == 0

    def test_cache_disabled_keeps_no_state(self, digit_images):
        dist = ShapeContextDistance(n_points=12, cache_features=False)
        dist(digit_images[0][0], digit_images[0][1])
        assert len(dist._feature_cache) == 0

    def test_cached_and_uncached_agree(self, digit_images):
        a, b = digit_images[6][0], digit_images[6][1]
        cached = ShapeContextDistance(n_points=14, cache_features=True)
        uncached = ShapeContextDistance(n_points=14, cache_features=False)
        assert cached(a, b) == pytest.approx(uncached(a, b))

    def test_negative_weights_rejected(self):
        with pytest.raises(DistanceError):
            ShapeContextDistance(matching_weight=-1.0)

    def test_appearance_term_can_be_disabled(self, digit_images):
        dist = ShapeContextDistance(n_points=12, half_window=0, appearance_weight=0.0)
        value = dist(digit_images[4][0], digit_images[4][1])
        assert np.isfinite(value) and value >= 0


class TestBatchedShapeContext:
    """The vectorised compute_many must equal the scalar loop bit for bit."""

    def _images(self, digit_images, n):
        flat = [img for bank in digit_images.values() for img in bank]
        return flat[:n]

    def test_compute_many_bit_identical_to_scalar(self, digit_images):
        images = self._images(digit_images, 12)
        batched = ShapeContextDistance(n_points=14)
        scalar = ShapeContextDistance(n_points=14)
        x = images[0]
        batch = batched.compute_many(x, images)
        loop = np.array([scalar.compute(x, y) for y in images])
        np.testing.assert_array_equal(batch, loop)

    def test_compute_many_without_feature_cache(self, digit_images):
        images = self._images(digit_images, 8)
        batched = ShapeContextDistance(n_points=12, cache_features=False)
        scalar = ShapeContextDistance(n_points=12, cache_features=False)
        batch = batched.compute_many(images[0], images[1:])
        loop = np.array([scalar.compute(images[0], y) for y in images[1:]])
        np.testing.assert_array_equal(batch, loop)

    def test_compute_many_chunking(self, digit_images, monkeypatch):
        """Forcing tiny chunks must not change the values."""
        import repro.distances.shape_context as sc_mod

        images = self._images(digit_images, 10)
        dist = ShapeContextDistance(n_points=12)
        full = dist.compute_many(images[0], images)
        original = sc_mod._chi2_cost_tensor

        def tracking(h1, h2_batch):
            tracking.batch_sizes.append(h2_batch.shape[0])
            return original(h1, h2_batch)

        tracking.batch_sizes = []
        monkeypatch.setattr(sc_mod, "_chi2_cost_tensor", tracking)
        chunked = ShapeContextDistance(n_points=12)
        values = chunked.compute_many(images[0], images)
        assert tracking.batch_sizes  # batched kernel actually used
        np.testing.assert_array_equal(values, full)

    def test_empty_batch(self):
        dist = ShapeContextDistance(n_points=12)
        assert dist.compute_many(np.zeros((8, 8)), []).shape == (0,)

    def test_cost_tensor_slices_match_matrix(self, digit_images, rng):
        from repro.distances.shape_context import (
            ShapeContextExtractor,
            _chi2_cost_matrix,
            _chi2_cost_tensor,
        )

        extractor = ShapeContextExtractor(n_points=12)
        images = self._images(digit_images, 6)
        histograms = [extractor.extract(img)[1] for img in images]
        tensor = _chi2_cost_tensor(histograms[0], np.stack(histograms[1:]))
        for t, h in enumerate(histograms[1:]):
            np.testing.assert_array_equal(tensor[t], _chi2_cost_matrix(histograms[0], h))
            # The transposed slice is the backward-direction matrix, bitwise.
            np.testing.assert_array_equal(
                tensor[t].T, _chi2_cost_matrix(h, histograms[0])
            )

    def test_pickling_drops_identity_keyed_feature_cache(self, digit_images):
        import pickle

        images = self._images(digit_images, 4)
        dist = ShapeContextDistance(n_points=12)
        value = dist.compute(images[0], images[1])
        assert len(dist._feature_cache) == 2
        clone = pickle.loads(pickle.dumps(dist))
        assert len(clone._feature_cache) == 0
        assert clone.compute(images[0], images[1]) == value
