"""Tests for the EmbeddingIndex facade, its artifacts, and the worker pool.

Covers the acceptance surface of the build → save → open → query API:

* artifact round trips across all three built-in backends (neighbors,
  distances and per-query cost accounting bit-identical, zero retraining);
* fingerprint verification refusing mismatched databases and half-written
  artifacts;
* warm-open serving with zero exact evaluations for store-resident pairs;
* persistent-pool results bit-identical to the serial path, with a single
  pool launch across repeated ``query_many`` calls;
* equivalence with the hand-wired trainer → retriever → context path;
* the bounded ``DistanceStore`` (LRU over sparse entries, dense blocks
  kept) and the atomic ``save_store``.
"""

from __future__ import annotations

import os
import pickle

import numpy as np
import pytest

from repro import (
    BoostMapTrainer,
    ConstrainedDTW,
    DistanceContext,
    EmbeddingIndex,
    FilterRefineRetriever,
    IndexConfig,
    L2Distance,
    PersistentPool,
    RetrievalSplit,
    TrainingConfig,
    make_gaussian_clusters,
    make_timeseries_dataset,
)
from repro.distances.context import DistanceStore
from repro.exceptions import (
    ArtifactError,
    ConfigurationError,
    DistanceError,
    RetrievalError,
)
from repro.index import available_backends, register_backend
from repro.index.artifacts import MANIFEST_NAME, read_manifest, write_manifest


def _tiny_training(seed: int = 2) -> TrainingConfig:
    return TrainingConfig(
        n_candidates=25,
        n_training_objects=25,
        n_triples=400,
        n_rounds=8,
        classifiers_per_round=15,
        intervals_per_candidate=4,
        kmax=5,
        seed=seed,
    )


@pytest.fixture(scope="module")
def l2_split():
    dataset = make_gaussian_clusters(n_objects=100, n_clusters=5, n_dims=5, seed=11)
    return RetrievalSplit.from_dataset(dataset, n_queries=12, seed=12)


@pytest.fixture(scope="module")
def built_index(l2_split):
    index = EmbeddingIndex.build(
        L2Distance(),
        l2_split.database,
        IndexConfig(training=_tiny_training()),
        queries=list(l2_split.queries),
    )
    yield index
    index.close()


def assert_results_identical(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
        assert np.array_equal(a.neighbor_distances, b.neighbor_distances)
        assert a.total_distance_computations == b.total_distance_computations


class TestBuildAndQuery:
    def test_build_trains_once_and_serves(self, built_index, l2_split):
        results = built_index.query_many(list(l2_split.queries), k=3, p=10)
        assert len(results) == len(l2_split.queries)
        for result in results:
            assert result.neighbor_indices.shape == (3,)
            assert (
                result.total_distance_computations <= len(l2_split.database)
            )

    def test_query_matches_query_many(self, built_index, l2_split):
        single = [built_index.query(q, k=2, p=8) for q in l2_split.queries]
        batched = built_index.query_many(list(l2_split.queries), k=2, p=8)
        for a, b in zip(single, batched):
            assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
            assert np.array_equal(a.neighbor_distances, b.neighbor_distances)

    def test_equivalent_to_hand_wired_pipeline(self, l2_split):
        """The facade path must be bit-identical — neighbors and per-query
        total_distance_computations — to trainer → retriever → context."""
        config = _tiny_training()
        context = DistanceContext(
            L2Distance(), list(l2_split.database) + list(l2_split.queries)
        )
        model = BoostMapTrainer(context, l2_split.database, config).train().model
        retriever = FilterRefineRetriever(context, l2_split.database, model)
        hand = retriever.query_many(list(l2_split.queries), k=3, p=10)

        index = EmbeddingIndex.build(
            L2Distance(),
            l2_split.database,
            IndexConfig(training=config),
            queries=list(l2_split.queries),
        )
        got = index.query_many(list(l2_split.queries), k=3, p=10)
        assert_results_identical(hand, got)
        assert index.distance_evaluations == context.distance_evaluations
        index.close()

    def test_backend_switch_is_free_and_identical(self, l2_split):
        index = EmbeddingIndex.build(
            L2Distance(),
            l2_split.database,
            IndexConfig(training=_tiny_training()),
            queries=list(l2_split.queries),
        )
        flat = index.query_many(list(l2_split.queries), k=3, p=10)
        before = index.distance_evaluations
        index.set_backend("sharded")
        assert index.distance_evaluations == before  # switching costs nothing
        sharded = index.query_many(list(l2_split.queries), k=3, p=10)
        # Same neighbors, and the switched backend reuses the shared store:
        # every refine pair was already evaluated, so the repeat is free.
        for a, b in zip(flat, sharded):
            assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
            assert np.array_equal(a.neighbor_distances, b.neighbor_distances)
            assert b.refine_distance_computations == 0
        assert index.distance_evaluations == before
        index.close()

    def test_brute_force_backend(self, l2_split):
        index = EmbeddingIndex.build(
            L2Distance(),
            l2_split.database,
            IndexConfig(training=_tiny_training(), backend="brute_force"),
        )
        result = index.query(l2_split.queries[0], k=4)  # p not needed
        # Brute force must agree with an exhaustive scan.
        exact = np.array(
            [L2Distance()(l2_split.queries[0], obj) for obj in l2_split.database]
        )
        expected = np.argsort(exact, kind="stable")[:4]
        assert np.array_equal(result.neighbor_indices, expected)
        assert result.embedding_distance_computations == 0
        index.close()

    def test_filter_backend_requires_p(self, built_index, l2_split):
        with pytest.raises(RetrievalError, match="needs p"):
            built_index.query(l2_split.queries[0], k=2)

    def test_closed_index_refuses_queries(self, l2_split):
        index = EmbeddingIndex.build(
            L2Distance(), l2_split.database, IndexConfig(training=_tiny_training())
        )
        index.close()
        with pytest.raises(RetrievalError, match="closed"):
            index.query(l2_split.queries[0], k=1, p=5)


class TestArtifactLifecycle:
    @pytest.mark.parametrize("backend", ["brute_force", "filter_refine", "sharded"])
    def test_round_trip_all_backends(self, tmp_path, l2_split, backend):
        """build → query → save → open → query round-trips bit-identically
        on every built-in backend, with zero retraining on open."""
        config = IndexConfig(
            training=_tiny_training(), backend=backend, n_shards=3
        )
        index = EmbeddingIndex.build(
            L2Distance(), l2_split.database, config, queries=list(l2_split.queries)
        )
        kwargs = {} if backend == "brute_force" else {"p": 10}
        index.query_many(list(l2_split.queries), k=3, **kwargs)
        # A second pass on the (now warm) index is the reference state the
        # reopened index must reproduce — including per-query costs.
        warm = index.query_many(list(l2_split.queries), k=3, **kwargs)
        index.save(tmp_path / "artifact")
        index.close()

        reopened = EmbeddingIndex.open(tmp_path / "artifact", l2_split.database)
        assert reopened.backend == backend
        served = reopened.query_many(list(l2_split.queries), k=3, **kwargs)
        assert_results_identical(warm, served)
        # Zero retraining and zero exact evaluations: everything the serve
        # needed was persisted.
        assert reopened.distance_evaluations == 0
        reopened.close()

    def test_open_verifies_model_identity(self, tmp_path, built_index, l2_split):
        built_index.save(tmp_path / "artifact")
        reopened = EmbeddingIndex.open(tmp_path / "artifact", l2_split.database)
        assert reopened.embedder.to_dict() == built_index.embedder.to_dict()
        np.testing.assert_array_equal(
            reopened.database_vectors, built_index.database_vectors
        )
        reopened.close()

    def test_open_refuses_fingerprint_mismatch(self, tmp_path, built_index):
        built_index.save(tmp_path / "artifact")
        other = make_gaussian_clusters(n_objects=88, n_clusters=5, n_dims=5, seed=99)
        with pytest.raises(ArtifactError, match="fingerprint|database"):
            EmbeddingIndex.open(tmp_path / "artifact", other)

    def test_open_refuses_reordered_database(self, tmp_path, built_index, l2_split):
        built_index.save(tmp_path / "artifact")
        reordered = l2_split.database.subset(
            list(range(len(l2_split.database)))[::-1]
        )
        with pytest.raises(ArtifactError, match="fingerprint"):
            EmbeddingIndex.open(tmp_path / "artifact", reordered)

    def test_open_refuses_missing_manifest(self, tmp_path, built_index, l2_split):
        """A save that crashed before its manifest commit point is refused."""
        built_index.save(tmp_path / "artifact")
        (tmp_path / "artifact" / MANIFEST_NAME).unlink()
        with pytest.raises(ArtifactError, match="manifest"):
            EmbeddingIndex.open(tmp_path / "artifact", l2_split.database)

    def test_open_refuses_future_format_version(
        self, tmp_path, built_index, l2_split
    ):
        built_index.save(tmp_path / "artifact")
        manifest = read_manifest(tmp_path / "artifact")
        manifest["format_version"] = 999
        # write_manifest stamps the supported version, so write by hand.
        import json

        (tmp_path / "artifact" / MANIFEST_NAME).write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="format version"):
            EmbeddingIndex.open(tmp_path / "artifact", l2_split.database)

    def test_open_checks_supplied_distance_name(
        self, tmp_path, built_index, l2_split
    ):
        built_index.save(tmp_path / "artifact")
        with pytest.raises(ArtifactError, match="distance"):
            EmbeddingIndex.open(
                tmp_path / "artifact", l2_split.database, distance=ConstrainedDTW()
            )
        # The right measure (by name) is accepted.
        reopened = EmbeddingIndex.open(
            tmp_path / "artifact", l2_split.database, distance=L2Distance()
        )
        reopened.close()

    def test_warm_open_serves_stored_queries_for_free(self, tmp_path):
        """The acceptance scenario: a reopened index answers a previously
        served query batch with zero exact evaluations, even though the
        caller's query objects are new (equal-content) instances."""
        database, queries = make_timeseries_dataset(
            n_database=60, n_queries=8, n_seeds=6, length=24, n_dims=1, seed=3
        )
        index = EmbeddingIndex.build(
            ConstrainedDTW(),
            database,
            IndexConfig(training=_tiny_training(seed=5)),
        )
        index.query_many(list(queries), k=3, p=12)
        assert index.distance_evaluations > 0
        warm = index.query_many(list(queries), k=3, p=12)
        index.save(tmp_path / "artifact")
        index.close()

        # Regenerate the dataset: distinct objects, identical content.
        database2, queries2 = make_timeseries_dataset(
            n_database=60, n_queries=8, n_seeds=6, length=24, n_dims=1, seed=3
        )
        reopened = EmbeddingIndex.open(tmp_path / "artifact", database2)
        served = reopened.query_many(list(queries2), k=3, p=12)
        assert reopened.distance_evaluations == 0
        assert_results_identical(warm, served)
        for result in served:
            assert result.refine_distance_computations == 0
        reopened.close()

    def test_asymmetric_context_round_trips(self, tmp_path):
        """An index adopted from an asymmetric context must reopen: the
        config records the store's symmetry convention at build time."""
        rng = np.random.default_rng(4)

        def histogram():
            h = rng.random(6) + 0.05
            return h / h.sum()

        from repro.datasets.base import Dataset

        database = Dataset([histogram() for _ in range(40)], name="hists")
        queries = [histogram() for _ in range(5)]
        from repro import KLDivergence

        context = DistanceContext(
            KLDivergence(), list(database) + queries, symmetric=False
        )
        index = EmbeddingIndex.build(
            context,
            database,
            IndexConfig(training=_tiny_training(seed=8), n_shards=2),
        )
        assert index.config.symmetric is False  # reconciled with the store
        index.query_many(queries, k=2, p=8)
        warm = index.query_many(queries, k=2, p=8)
        index.save(tmp_path / "artifact")
        index.close()
        reopened = EmbeddingIndex.open(tmp_path / "artifact", database)
        assert reopened.context.store.symmetric is False
        served = reopened.query_many(queries, k=2, p=8)
        assert_results_identical(warm, served)
        assert reopened.distance_evaluations == 0
        reopened.close()

    def test_save_refuses_non_prefix_database_layout(self, tmp_path, l2_split):
        """The artifact format keys everything by database position, so a
        context whose universe does not start with the database cannot be
        persisted (it would reopen against wrong store keys)."""
        context = DistanceContext(
            L2Distance(), list(l2_split.queries) + list(l2_split.database)
        )
        index = EmbeddingIndex.build(
            context, l2_split.database, IndexConfig(training=_tiny_training())
        )
        index.query(l2_split.queries[0], k=1, p=5)  # serving still works
        with pytest.raises(ArtifactError, match="universe positions"):
            index.save(tmp_path / "artifact")
        index.close()

    def test_save_requires_trained_model(self, tmp_path, l2_split):
        from repro.embeddings.lipschitz import build_lipschitz_embedding

        embedding = build_lipschitz_embedding(
            L2Distance(), l2_split.database, dim=4, set_size=1, seed=0
        )
        index = EmbeddingIndex.build(
            L2Distance(),
            l2_split.database,
            IndexConfig(training=_tiny_training()),
            embedder=embedding,
        )
        with pytest.raises(ArtifactError, match="QuerySensitiveModel"):
            index.save(tmp_path / "artifact")
        index.close()

    def test_register_queries_false_keeps_universe_fixed(self, l2_split):
        """Novel-query serving mode: results identical, universe constant."""
        config = _tiny_training()
        registered = EmbeddingIndex.build(
            L2Distance(), l2_split.database, IndexConfig(training=config)
        )
        unregistered = EmbeddingIndex.build(
            L2Distance(),
            l2_split.database,
            IndexConfig(training=config, register_queries=False),
        )
        n_before = unregistered.context.n_objects
        a = registered.query_many(list(l2_split.queries), k=3, p=10)
        b = unregistered.query_many(list(l2_split.queries), k=3, p=10)
        # Same neighbors either way; only the *cost* differs (a registered
        # query's embedding-anchor pairs are reusable by its refine step).
        for lhs, rhs in zip(a, b):
            assert np.array_equal(lhs.neighbor_indices, rhs.neighbor_indices)
            assert np.array_equal(lhs.neighbor_distances, rhs.neighbor_distances)
        assert unregistered.context.n_objects == n_before
        assert registered.context.n_objects > n_before
        # Repeat batch: the registered index serves from the store, the
        # unregistered one re-evaluates (by design).
        again = unregistered.query_many(list(l2_split.queries), k=3, p=10)
        assert all(r.refine_distance_computations > 0 for r in again)
        registered.close()
        unregistered.close()

    def test_crashed_resave_leaves_unopenable_artifact(
        self, tmp_path, built_index, l2_split
    ):
        """Overwriting an existing artifact retracts the manifest first, so
        a crash mid-re-save cannot leave the old manifest validating a
        mixed old/new file set."""
        built_index.save(tmp_path / "artifact")

        import repro.index.embedding_index as module

        original = module.artifacts.write_arrays
        calls = {"n": 0}

        def crash_after_arrays(*args, **kwargs):
            calls["n"] += 1
            original(*args, **kwargs)
            raise RuntimeError("simulated crash mid-save")

        module.artifacts.write_arrays = crash_after_arrays
        try:
            with pytest.raises(RuntimeError):
                built_index.save(tmp_path / "artifact")
        finally:
            module.artifacts.write_arrays = original
        assert calls["n"] == 1
        with pytest.raises(ArtifactError, match="manifest"):
            EmbeddingIndex.open(tmp_path / "artifact", l2_split.database)
        # A completed re-save repairs the directory.
        built_index.save(tmp_path / "artifact")
        EmbeddingIndex.open(tmp_path / "artifact", l2_split.database).close()

    def test_saved_store_includes_served_queries(self, tmp_path, built_index):
        """Ad-hoc queries served before save() are part of the artifact."""
        built_index.save(tmp_path / "artifact")
        manifest = read_manifest(tmp_path / "artifact")
        assert manifest["n_extra_objects"] > 0  # the registered queries


class TestPersistentPoolServing:
    def test_pooled_results_bit_identical_to_serial(self):
        database, queries = make_timeseries_dataset(
            n_database=50, n_queries=8, n_seeds=6, length=24, n_dims=1, seed=7
        )
        serial = EmbeddingIndex.build(
            ConstrainedDTW(), database, IndexConfig(training=_tiny_training(seed=9))
        )
        serial_results = serial.query_many(list(queries), k=3, p=10)

        pooled = EmbeddingIndex.build(
            ConstrainedDTW(),
            database,
            IndexConfig(training=_tiny_training(seed=9), n_jobs=2),
        )
        pooled_results = pooled.query_many(list(queries), k=3, p=10, n_jobs=2)
        assert_results_identical(serial_results, pooled_results)
        serial.close()
        pooled.close()

    def test_single_pool_instance_serves_repeated_batches(self):
        """One persistent pool (one launch) across build + every query_many."""
        database, queries = make_timeseries_dataset(
            n_database=50, n_queries=6, n_seeds=6, length=24, n_dims=1, seed=7
        )
        index = EmbeddingIndex.build(
            ConstrainedDTW(),
            database,
            IndexConfig(training=_tiny_training(seed=9), n_jobs=2),
        )
        fresh_batches = [list(queries)[:3], list(queries)[3:]]
        for batch in fresh_batches:
            index.query_many(batch, k=2, p=10, n_jobs=2)
        assert index.pool.launches == 1
        assert index.pool.runs >= 2
        index.close()
        # Closing is idempotent and leaves the pool unusable.
        index.close()
        with pytest.raises(DistanceError, match="closed"):
            index.pool.run(lambda s, c: c, {}, [[1]])

    def test_shared_pool_is_borrowed_not_owned(self, l2_split):
        with PersistentPool(2) as pool:
            index = EmbeddingIndex.build(
                L2Distance(),
                l2_split.database,
                IndexConfig(training=_tiny_training()),
                pool=pool,
            )
            index.close()  # must NOT close the shared pool
            assert not pool._closed
            pool.run(_echo_chunk, {"tag": 1}, [[1, 2]])

    def test_serial_config_creates_no_pool(self, l2_split):
        """A serial index stays pool-less (nothing to leak), and a per-call
        n_jobs override still works through a per-call executor."""
        index = EmbeddingIndex.build(
            L2Distance(), l2_split.database, IndexConfig(training=_tiny_training())
        )
        assert index.pool is None
        assert index.context.pool is None
        serial = index.query_many(list(l2_split.queries)[:4], k=2, p=8)
        fresh = list(l2_split.queries)[4:8]
        pooled = index.query_many(fresh, k=2, p=8, n_jobs=2)
        reference = index.query_many(fresh, k=2, p=8)
        for a, b in zip(pooled, reference):
            assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
        index.close()

    def test_undersized_pool_bypassed_for_wider_requests(self, l2_split):
        """A 1-worker pool must not serialize a multi-worker request."""
        context = DistanceContext(
            L2Distance(), list(l2_split.database) + list(l2_split.queries)
        )
        with PersistentPool(1) as pool:
            context.pool = pool
            assert context._pool_for(4) is None  # fall back to per-call
            assert context._pool_for(1) is pool
        context.pool = None

    def test_closed_borrowed_pool_degrades_gracefully(self, l2_split):
        """An index outliving its borrowed pool falls back to per-call
        executors instead of erroring on the next parallel batch."""
        pool = PersistentPool(2)
        index = EmbeddingIndex.build(
            L2Distance(),
            l2_split.database,
            IndexConfig(training=_tiny_training(), n_jobs=2),
            pool=pool,
        )
        reference = index.query_many(list(l2_split.queries), k=2, p=8)
        pool.close()
        # Genuinely novel queries → real refine work that would hit the pool.
        rng = np.random.default_rng(3)
        fresh = [rng.normal(size=5) for _ in range(4)]
        served = index.query_many(fresh, k=2, p=8, n_jobs=2)
        expected = index.query_many(fresh, k=2, p=8)
        for a, b in zip(served, expected):
            assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
        assert index.context.pool is None  # closed pool was detached
        assert len(reference) == len(l2_split.queries)
        index.close()

    def test_adoption_survives_batches_larger_than_the_lru(self, tmp_path):
        """A warm-open batch larger than the adopted-id LRU must still be
        served entirely from the store (no silent cache-nothing fallback)."""
        database, queries = make_timeseries_dataset(
            n_database=40, n_queries=6, n_seeds=5, length=20, n_dims=1, seed=5
        )
        index = EmbeddingIndex.build(
            ConstrainedDTW(), database, IndexConfig(training=_tiny_training(seed=6))
        )
        index.query_many(list(queries), k=2, p=8)
        index.save(tmp_path / "artifact")
        index.close()

        _db2, queries2 = make_timeseries_dataset(
            n_database=40, n_queries=6, n_seeds=5, length=20, n_dims=1, seed=5
        )
        reopened = EmbeddingIndex.open(tmp_path / "artifact", database)
        reopened.context.ADOPTED_CACHE_SIZE = 2  # force eviction pressure
        served = reopened.query_many(list(queries2), k=2, p=8)
        assert reopened.distance_evaluations == 0
        for result in served:
            assert result.refine_distance_computations == 0
        reopened.close()

    def test_pool_cannot_be_pickled(self):
        with PersistentPool(1) as pool:
            with pytest.raises(DistanceError, match="pickle"):
                pickle.dumps(pool)


def _echo_chunk(state, chunk):
    return [state["tag"]] + list(chunk)


class TestPersistentPoolUnit:
    def test_run_preserves_chunk_order_and_state(self):
        with PersistentPool(2) as pool:
            results = pool.run(
                _echo_chunk, {"tag": 7}, [[1], [2], [3], [4]], signature=("s", 1)
            )
            assert results == [[7, 1], [7, 2], [7, 3], [7, 4]]
            assert pool.launches == 1
            # Same signature: the state is not re-published.
            pool.run(_echo_chunk, {"tag": 7}, [[5]], signature=("s", 1))
            assert pool.states_published == 1
            # New signature: published once more, same workers.
            pool.run(_echo_chunk, {"tag": 8}, [[6]], signature=("s", 2))
            assert pool.states_published == 2
            assert pool.launches == 1

    def test_unsigned_state_never_cached(self):
        with PersistentPool(1) as pool:
            pool.run(_echo_chunk, {"tag": 1}, [[1]])
            pool.run(_echo_chunk, {"tag": 2}, [[2]])
            assert pool.states_published == 2


class TestIndexConfig:
    def test_round_trip(self):
        config = IndexConfig(
            training=_tiny_training(seed=4),
            backend="sharded",
            n_shards=5,
            n_jobs=3,
            symmetric=False,
            max_sparse_entries=1000,
        )
        clone = IndexConfig.from_dict(config.to_dict())
        assert clone == config

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            IndexConfig(backend="warp-drive")

    def test_third_party_backend_registration(self, l2_split):
        calls = {}

        def factory(distance, database, embedder, database_vectors, config):
            calls["built"] = True
            return _BACKEND_PROBE

        register_backend("test-probe", factory)
        try:
            assert "test-probe" in available_backends()
            index = EmbeddingIndex.build(
                L2Distance(),
                l2_split.database,
                IndexConfig(training=_tiny_training(), backend="test-probe"),
            )
            assert calls["built"]
            assert index.query(l2_split.queries[0], k=1, p=3) == "probe-result"
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend("test-probe", factory)
            index.close()
        finally:
            from repro.index.embedding_index import _BACKEND_REGISTRY

            _BACKEND_REGISTRY.pop("test-probe", None)


class _BackendProbe:
    def query(self, obj, k, p=None, n_jobs=None):
        return "probe-result"

    def query_many(self, objects, k, p=None, n_jobs=None):
        return ["probe-result"] * len(objects)


_BACKEND_PROBE = _BackendProbe()


class TestBoundedStore:
    def test_lru_eviction_over_sparse_entries(self):
        store = DistanceStore(max_sparse_entries=3)
        for i in range(5):
            store.put(0, i + 1, float(i))
        assert store.n_sparse_entries == 3
        assert store.sparse_evictions == 2
        assert store.get(0, 1) is None  # oldest two evicted
        assert store.get(0, 5) == 4.0

    def test_get_refreshes_recency(self):
        store = DistanceStore(max_sparse_entries=2)
        store.put(0, 1, 1.0)
        store.put(0, 2, 2.0)
        assert store.get(0, 1) == 1.0  # refresh (0, 1)
        store.put(0, 3, 3.0)  # evicts (0, 2), the least recently used
        assert store.get(0, 2) is None
        assert store.get(0, 1) == 1.0

    def test_dense_blocks_never_evicted(self):
        store = DistanceStore(max_sparse_entries=1)
        values = np.arange(9, dtype=float).reshape(3, 3)
        store.put_block([0, 1, 2], [3, 4, 5], values)
        for i in range(50):
            store.put(10, 11 + i, float(i))
        assert store.get(1, 4) == 4.0  # block cell survives any sparse churn
        assert store.n_sparse_entries == 1

    def test_bound_must_be_positive(self):
        with pytest.raises(DistanceError, match="positive"):
            DistanceStore(max_sparse_entries=0)

    def test_context_results_identical_under_tight_bound(self):
        """A tiny bound may cost re-evaluations but never changes values,
        including batches larger than the bound and duplicate targets."""
        rng = np.random.default_rng(0)
        objects = [rng.normal(size=4) for _ in range(20)]
        unbounded = DistanceContext(L2Distance(), objects)
        bounded = DistanceContext(L2Distance(), objects, max_sparse_entries=3)
        targets = list(range(1, 20)) + [5, 5, 7]
        a = unbounded.distances_to(objects[0], targets)
        b = bounded.distances_to(objects[0], targets)
        np.testing.assert_array_equal(a, b)
        # Batched path with duplicate queries/targets exercises the
        # deferred-pair bookkeeping under eviction pressure.
        batch = [objects[2], objects[3], objects[2]]
        values_a, _ = unbounded.distances_to_many(batch, [targets] * 3)
        # n_jobs=2 exercises the deferred-pair fallback: a pair computed
        # under another query's plan can be evicted again before the
        # deferred position reads it back.
        values_b, _ = bounded.distances_to_many(batch, [targets] * 3, n_jobs=2)
        for lhs, rhs in zip(values_a, values_b):
            np.testing.assert_array_equal(lhs, rhs)
        assert bounded.store.n_sparse_entries <= 3
        assert bounded.store.sparse_evictions > 0

    def test_index_config_surfaces_bound(self, l2_split):
        index = EmbeddingIndex.build(
            L2Distance(),
            l2_split.database,
            IndexConfig(training=_tiny_training(), max_sparse_entries=40),
        )
        index.query_many(list(l2_split.queries), k=2, p=15)
        assert index.context.store.max_sparse_entries == 40
        assert index.context.store.n_sparse_entries <= 40
        index.close()

    def test_merge_respects_bound(self):
        big = DistanceStore()
        for i in range(10):
            big.put(0, i + 1, float(i))
        small = DistanceStore(max_sparse_entries=4)
        small.merge(big)
        assert small.n_sparse_entries == 4


class TestAtomicStoreSave:
    def test_failed_save_preserves_existing_file(self, tmp_path, monkeypatch):
        store = DistanceStore()
        store.put(0, 1, 1.5)
        path = tmp_path / "store.npz"
        store.save(path)
        original = path.read_bytes()

        store.put(0, 2, 2.5)
        import repro.distances.context as context_module

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(context_module.np, "savez_compressed", boom)
        with pytest.raises(OSError):
            store.save(path)
        # The original file is intact and no temp litter remains.
        assert path.read_bytes() == original
        assert list(tmp_path.iterdir()) == [path]

    def test_save_leaves_no_temp_files(self, tmp_path):
        store = DistanceStore()
        store.put(3, 4, 5.0)
        path = tmp_path / "store.npz"
        store.save(path)
        assert [p.name for p in tmp_path.iterdir()] == ["store.npz"]
        loaded = DistanceStore.load(path)
        assert loaded.get(3, 4) == 5.0
