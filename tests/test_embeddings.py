"""Tests for 1D, composite, Lipschitz and FastMap embeddings."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, make_gaussian_clusters
from repro.distances import CountingDistance, L1Distance, L2Distance
from repro.embeddings import (
    CompositeEmbedding,
    FastMapEmbedding,
    LipschitzEmbedding,
    PivotEmbedding,
    ReferenceEmbedding,
    build_fastmap_embedding,
    build_lipschitz_embedding,
)
from repro.exceptions import EmbeddingError


@pytest.fixture(scope="module")
def vector_dataset():
    return make_gaussian_clusters(n_objects=60, n_clusters=3, n_dims=4, seed=2)


class TestReferenceEmbedding:
    def test_value_is_distance_to_reference(self, l2):
        ref = np.array([0.0, 0.0])
        emb = ReferenceEmbedding(l2, ref)
        assert emb.value(np.array([3.0, 4.0])) == pytest.approx(5.0)
        assert emb.embed(np.array([3.0, 4.0])).shape == (1,)

    def test_cost_is_one(self, l2):
        assert ReferenceEmbedding(l2, np.zeros(2)).cost == 1

    def test_value_from_distances(self, l2):
        emb = ReferenceEmbedding(l2, np.zeros(2))
        assert emb.value_from_distances([7.5]) == 7.5
        with pytest.raises(EmbeddingError):
            emb.value_from_distances([1.0, 2.0])

    def test_lipschitz_property_for_metric_distance(self, l2, rng):
        """|F^r(x) - F^r(y)| <= D(x, y) when D is a metric."""
        reference = rng.normal(size=3)
        emb = ReferenceEmbedding(l2, reference)
        for _ in range(20):
            x, y = rng.normal(size=3), rng.normal(size=3)
            assert abs(emb.value(x) - emb.value(y)) <= l2(x, y) + 1e-9

    def test_requires_distance_measure(self):
        with pytest.raises(EmbeddingError):
            ReferenceEmbedding(lambda a, b: 0.0, np.zeros(2))

    def test_describe_mentions_reference_id(self, l2):
        assert "42" in ReferenceEmbedding(l2, np.zeros(2), reference_id=42).describe()


class TestPivotEmbedding:
    def test_euclidean_projection_is_exact_on_the_line(self, l2):
        """In Euclidean space, the projection of a point on the pivot line is exact."""
        p1, p2 = np.array([0.0, 0.0]), np.array([10.0, 0.0])
        emb = PivotEmbedding(l2, p1, p2)
        assert emb.value(np.array([3.0, 0.0])) == pytest.approx(3.0)
        assert emb.value(np.array([3.0, 4.0])) == pytest.approx(3.0)
        assert emb.value(p1) == pytest.approx(0.0)
        assert emb.value(p2) == pytest.approx(10.0)

    def test_cost_is_two(self, l2):
        emb = PivotEmbedding(l2, np.zeros(2), np.ones(2))
        assert emb.cost == 2

    def test_value_from_distances_matches_value(self, l2, rng):
        p1, p2 = rng.normal(size=3), rng.normal(size=3)
        emb = PivotEmbedding(l2, p1, p2)
        x = rng.normal(size=3)
        assert emb.value_from_distances([l2(x, p1), l2(x, p2)]) == pytest.approx(emb.value(x))

    def test_coincident_pivots_rejected(self, l2):
        point = np.array([1.0, 1.0])
        with pytest.raises(EmbeddingError):
            PivotEmbedding(l2, point, point.copy())

    def test_interpivot_distance_reused_when_given(self, l2):
        counting = CountingDistance(L2Distance())
        PivotEmbedding(counting, np.zeros(2), np.ones(2), interpivot_distance=np.sqrt(2))
        assert counting.calls == 0

    def test_wrong_precomputed_distance_count(self, l2):
        emb = PivotEmbedding(l2, np.zeros(2), np.ones(2))
        with pytest.raises(EmbeddingError):
            emb.value_from_distances([1.0])


class TestCompositeEmbedding:
    def test_concatenates_coordinates(self, l2):
        refs = [np.array([0.0, 0.0]), np.array([1.0, 0.0])]
        composite = CompositeEmbedding([ReferenceEmbedding(l2, r) for r in refs])
        vec = composite.embed(np.array([0.0, 1.0]))
        assert vec.shape == (2,)
        assert vec[0] == pytest.approx(1.0)
        assert vec[1] == pytest.approx(np.sqrt(2))

    def test_cost_counts_distinct_anchors(self, l2):
        shared = np.array([0.0, 0.0])
        other = np.array([2.0, 0.0])
        coords = [
            ReferenceEmbedding(l2, shared),
            ReferenceEmbedding(l2, shared),  # same object -> shared anchor
            PivotEmbedding(l2, shared, other),
        ]
        composite = CompositeEmbedding(coords)
        assert composite.dim == 3
        assert composite.cost == 2  # shared + other

    def test_embed_shares_anchor_distance_computations(self):
        counting = CountingDistance(L2Distance())
        shared = np.array([0.0, 0.0])
        coords = [ReferenceEmbedding(counting, shared), ReferenceEmbedding(counting, shared)]
        CompositeEmbedding(coords).embed(np.array([1.0, 1.0]))
        assert counting.calls == 1

    def test_embed_many_shape(self, l2):
        composite = CompositeEmbedding([ReferenceEmbedding(l2, np.zeros(2))])
        matrix = composite.embed_many([np.ones(2), np.zeros(2), np.array([3.0, 4.0])])
        assert matrix.shape == (3, 1)

    def test_prefix(self, l2):
        coords = [ReferenceEmbedding(l2, np.array([float(i), 0.0])) for i in range(4)]
        composite = CompositeEmbedding(coords)
        prefix = composite.prefix(2)
        assert prefix.dim == 2
        with pytest.raises(EmbeddingError):
            composite.prefix(0)
        with pytest.raises(EmbeddingError):
            composite.prefix(5)

    def test_requires_coordinates(self):
        with pytest.raises(EmbeddingError):
            CompositeEmbedding([])


class TestLipschitzEmbedding:
    def test_singleton_sets_equal_reference_embeddings(self, l2):
        refs = [np.array([0.0, 0.0]), np.array([1.0, 1.0])]
        lip = LipschitzEmbedding(l2, [[r] for r in refs])
        x = np.array([2.0, 0.0])
        assert lip.embed(x)[0] == pytest.approx(l2(x, refs[0]))
        assert lip.embed(x)[1] == pytest.approx(l2(x, refs[1]))

    def test_set_coordinate_is_min_distance(self, l2):
        ref_set = [np.array([0.0, 0.0]), np.array([10.0, 0.0])]
        lip = LipschitzEmbedding(l2, [ref_set])
        assert lip.embed(np.array([9.0, 0.0]))[0] == pytest.approx(1.0)

    def test_cost_counts_all_reference_objects(self, l2):
        lip = LipschitzEmbedding(l2, [[np.zeros(2)], [np.zeros(2), np.ones(2)]])
        assert lip.cost == 3
        assert lip.dim == 2

    def test_builder_draws_from_database(self, l2, vector_dataset):
        lip = build_lipschitz_embedding(l2, vector_dataset, dim=5, set_size=2, seed=0)
        assert lip.dim == 5
        assert lip.cost == 10

    def test_builder_validates_arguments(self, l2, vector_dataset):
        with pytest.raises(EmbeddingError):
            build_lipschitz_embedding(l2, vector_dataset, dim=0)
        with pytest.raises(EmbeddingError):
            build_lipschitz_embedding(l2, vector_dataset, dim=2, set_size=0)
        with pytest.raises(EmbeddingError):
            build_lipschitz_embedding(l2, vector_dataset, dim=2, set_size=10**6)

    def test_empty_reference_set_rejected(self, l2):
        with pytest.raises(EmbeddingError):
            LipschitzEmbedding(l2, [[]])


class TestFastMap:
    def test_build_produces_requested_dimensions(self, l2, vector_dataset):
        fastmap = build_fastmap_embedding(l2, vector_dataset, dim=3, seed=0)
        assert fastmap.dim == 3
        assert fastmap.cost == 6
        assert fastmap.embed(vector_dataset[0]).shape == (3,)

    def test_distances_roughly_preserved_in_euclidean_space(self, l2, vector_dataset):
        """On Euclidean data, a full-dimensional FastMap preserves distances well."""
        fastmap = build_fastmap_embedding(l2, vector_dataset, dim=4, seed=0)
        rng = np.random.default_rng(0)
        originals, embedded = [], []
        for _ in range(30):
            i, j = rng.integers(0, len(vector_dataset), size=2)
            if i == j:
                continue
            originals.append(l2(vector_dataset[int(i)], vector_dataset[int(j)]))
            embedded.append(l2(fastmap.embed(vector_dataset[int(i)]),
                               fastmap.embed(vector_dataset[int(j)])))
        correlation = np.corrcoef(originals, embedded)[0, 1]
        assert correlation > 0.9

    def test_prefix(self, l2, vector_dataset):
        fastmap = build_fastmap_embedding(l2, vector_dataset, dim=3, seed=0)
        prefix = fastmap.prefix(2)
        assert prefix.dim == 2
        full = fastmap.embed(vector_dataset[5])
        short = prefix.embed(vector_dataset[5])
        assert np.allclose(full[:2], short)
        with pytest.raises(EmbeddingError):
            fastmap.prefix(0)

    def test_dimension_can_collapse_on_degenerate_data(self, l2):
        # All points identical except one: residual distances vanish quickly.
        objects = [np.zeros(2)] * 10 + [np.ones(2)]
        dataset = Dataset(objects=objects, name="degenerate")
        fastmap = build_fastmap_embedding(l2, dataset, dim=5, seed=0)
        assert 1 <= fastmap.dim <= 5

    def test_all_identical_objects_rejected(self, l2):
        dataset = Dataset(objects=[np.zeros(2)] * 5, name="constant")
        with pytest.raises(EmbeddingError):
            build_fastmap_embedding(l2, dataset, dim=2, seed=0)

    def test_invalid_arguments(self, l2, vector_dataset):
        with pytest.raises(EmbeddingError):
            build_fastmap_embedding(l2, vector_dataset, dim=0)
        with pytest.raises(EmbeddingError):
            build_fastmap_embedding(l2, vector_dataset, dim=2, pivot_iterations=0)

    def test_sample_size_limits_pivot_pool(self, vector_dataset):
        counting = CountingDistance(L2Distance())
        build_fastmap_embedding(counting, vector_dataset, dim=2, sample_size=15, seed=0)
        # Construction cost should be far below using all 60 objects per level.
        assert counting.calls < 15 * 15 * 4
