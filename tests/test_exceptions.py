"""Tests for the library exception hierarchy (`repro.exceptions`).

Three properties matter to callers:

* **Hierarchy** — one ``except ReproError`` catches every intentional
  library failure; ``ServingTimeout`` stays catchable as ``TimeoutError``.
* **Message fidelity** — the message a site raises is the message the
  caller sees, through ``str()`` and through re-raising.
* **Picklability** — worker processes transport exceptions back through
  a ``ProcessPoolExecutor``; an exception type that cannot round-trip a
  pickle boundary surfaces as a confusing ``PicklingError`` instead of
  the real failure.
"""

from __future__ import annotations

import concurrent.futures
import inspect
import pickle

import pytest

import repro.exceptions as exceptions_module
from repro.exceptions import (
    ArtifactError,
    ConfigurationError,
    DatasetError,
    DistanceError,
    EmbeddingError,
    ExperimentError,
    ReproError,
    RetrievalError,
    SerializationError,
    ServingError,
    ServingTimeout,
    TrainingError,
)

ALL_EXCEPTION_TYPES = [
    obj
    for _, obj in sorted(vars(exceptions_module).items())
    if inspect.isclass(obj) and issubclass(obj, ReproError)
]


def test_every_public_exception_collected():
    names = {cls.__name__ for cls in ALL_EXCEPTION_TYPES}
    assert names == {
        "ReproError",
        "ConfigurationError",
        "DatasetError",
        "DistanceError",
        "EmbeddingError",
        "TrainingError",
        "RetrievalError",
        "ServingError",
        "ServingTimeout",
        "ExperimentError",
        "SerializationError",
        "ArtifactError",
        "RemoteError",
        "RemoteProtocolError",
        "RemoteConnectionError",
        "RemoteTimeout",
    }


# --------------------------------------------------------------------------- #
# Hierarchy                                                                   #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("exc_type", ALL_EXCEPTION_TYPES, ids=lambda c: c.__name__)
def test_derives_from_repro_error(exc_type):
    assert issubclass(exc_type, ReproError)
    assert issubclass(exc_type, Exception)


def test_one_clause_catches_everything():
    for exc_type in ALL_EXCEPTION_TYPES:
        with pytest.raises(ReproError):
            raise exc_type("boom")


@pytest.mark.parametrize(
    ("child", "parent"),
    [
        (ServingError, RetrievalError),
        (ServingTimeout, ServingError),
        (ServingTimeout, RetrievalError),
        (ArtifactError, ReproError),
        (DistanceError, ReproError),
    ],
)
def test_specific_parentage(child, parent):
    assert issubclass(child, parent)


def test_serving_timeout_is_a_timeout_error():
    # Callers that guard waits with `except TimeoutError` keep working.
    with pytest.raises(TimeoutError):
        raise ServingTimeout("deadline expired")


def test_siblings_do_not_cross_catch():
    with pytest.raises(DistanceError):
        try:
            raise DistanceError("incomparable")
        except ArtifactError:  # pragma: no cover - must not trigger
            pytest.fail("ArtifactError clause caught a DistanceError")


def test_programming_errors_are_not_repro_errors():
    assert not issubclass(TypeError, ReproError)
    assert not issubclass(KeyError, ReproError)


# --------------------------------------------------------------------------- #
# Message formatting                                                          #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("exc_type", ALL_EXCEPTION_TYPES, ids=lambda c: c.__name__)
def test_message_round_trips_str(exc_type):
    message = "the gizmo at /tmp/x is broken (detail: 42)"
    assert str(exc_type(message)) == message


def test_chained_raise_preserves_cause():
    try:
        try:
            raise OSError("disk on fire")
        except OSError as exc:
            raise ArtifactError("unreadable artifact: disk on fire") from exc
    except ArtifactError as caught:
        assert isinstance(caught.__cause__, OSError)
        assert "disk on fire" in str(caught)


# --------------------------------------------------------------------------- #
# Pickling                                                                    #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("exc_type", ALL_EXCEPTION_TYPES, ids=lambda c: c.__name__)
def test_pickle_round_trip_in_process(exc_type):
    original = exc_type("carried across the boundary")
    clone = pickle.loads(pickle.dumps(original))
    assert type(clone) is exc_type
    assert str(clone) == str(original)


def _raise_in_worker(type_name: str) -> None:
    import repro.exceptions

    raise getattr(repro.exceptions, type_name)(f"worker raised {type_name}")


@pytest.mark.slow
def test_every_exception_crosses_a_process_boundary():
    """Each type raised in a real worker arrives intact at the parent."""
    with concurrent.futures.ProcessPoolExecutor(max_workers=1) as executor:
        for exc_type in ALL_EXCEPTION_TYPES:
            future = executor.submit(_raise_in_worker, exc_type.__name__)
            with pytest.raises(exc_type) as excinfo:
                future.result(timeout=60)
            assert f"worker raised {exc_type.__name__}" in str(excinfo.value)
