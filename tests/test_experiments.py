"""Tests for the experiment harness (configs, runner, reporting, figures)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ConstrainedDTW, L2Distance, RetrievalSplit, make_gaussian_clusters
from repro.exceptions import ConfigurationError, ExperimentError
from repro.experiments import (
    MEDIUM,
    SMALL,
    TINY,
    ExperimentScale,
    compare_methods,
    format_comparison,
    format_cost_table,
    format_figure_series,
    format_table1,
    run_figure1,
    run_timing,
)
from repro.experiments.ablations import run_dimension_ablation, run_k1_ablation
from repro.experiments.reporting import speedup_table
from repro.experiments.runner import ALL_METHODS
from repro.experiments.timing import TimingResult, speedup_report


@pytest.fixture(scope="module")
def micro_scale():
    """An even smaller scale than TINY, for fast runner tests on L2 data."""
    return ExperimentScale(
        name="micro",
        database_size=90,
        n_queries=15,
        n_candidates=25,
        n_training_objects=25,
        n_triples=400,
        n_rounds=8,
        classifiers_per_round=15,
        intervals_per_candidate=4,
        dims=(2, 4, 8),
        ks=(1, 5),
        accuracies=(0.9, 1.0),
        kmax=5,
    )


@pytest.fixture(scope="module")
def micro_comparison(micro_scale):
    dataset = make_gaussian_clusters(n_objects=105, n_clusters=5, n_dims=5, seed=20)
    split = RetrievalSplit.from_dataset(dataset, n_queries=15, seed=21)
    return compare_methods(
        L2Distance(),
        split.database,
        split.queries,
        micro_scale,
        seed=22,
        dataset_name="micro-gaussian",
    )


class TestExperimentScale:
    def test_presets_are_valid(self):
        for scale in (TINY, SMALL, MEDIUM):
            assert scale.k_max_needed == max(scale.ks)
            assert scale.n_candidates <= scale.database_size

    def test_with_overrides(self):
        quick = SMALL.with_overrides(name="quick", n_triples=10)
        assert quick.n_triples == 10 and SMALL.n_triples != 10

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"database_size": 0},
            {"n_candidates": 10**6},
            {"ks": ()},
            {"accuracies": (1.5,)},
            {"ks": (10**6,)},
        ],
    )
    def test_invalid_scales_rejected(self, kwargs):
        base = dict(
            name="bad",
            database_size=100,
            n_queries=10,
            n_candidates=20,
            n_training_objects=20,
            n_triples=100,
            n_rounds=5,
            classifiers_per_round=10,
            intervals_per_candidate=3,
            dims=(2,),
            ks=(1,),
            accuracies=(0.9,),
            kmax=5,
        )
        base.update(kwargs)
        with pytest.raises(ConfigurationError):
            ExperimentScale(**base)


class TestRunner:
    def test_all_methods_present(self, micro_comparison):
        assert set(micro_comparison.methods) == set(ALL_METHODS)

    def test_costs_never_exceed_brute_force(self, micro_comparison):
        for result in micro_comparison.methods.values():
            for accuracy in micro_comparison.accuracies:
                for k in micro_comparison.ks:
                    cost = result.cost(k, accuracy)
                    assert 1 <= cost <= micro_comparison.brute_force_cost

    def test_costs_monotone_in_accuracy(self, micro_comparison):
        for result in micro_comparison.methods.values():
            for k in micro_comparison.ks:
                assert result.cost(k, 0.9) <= result.cost(k, 1.0)

    def test_costs_monotone_in_k(self, micro_comparison):
        """Retrieving more neighbors can never be cheaper at fixed accuracy."""
        for result in micro_comparison.methods.values():
            for accuracy in micro_comparison.accuracies:
                assert result.cost(1, accuracy) <= result.cost(5, accuracy)

    def test_trained_methods_report_training_error(self, micro_comparison):
        assert np.isnan(micro_comparison.method("FastMap").training_error)
        for tag in ("Ra-QI", "Se-QS"):
            assert 0.0 <= micro_comparison.method(tag).training_error <= 0.5

    def test_method_accessor_rejects_unknown(self, micro_comparison):
        with pytest.raises(ExperimentError):
            micro_comparison.method("Nonexistent")
        with pytest.raises(ExperimentError):
            micro_comparison.method("Se-QS").cost(999, 0.9)

    def test_unknown_method_tag_rejected(self, micro_scale):
        dataset = make_gaussian_clusters(n_objects=100, seed=0)
        split = RetrievalSplit.from_dataset(dataset, n_queries=10, seed=1)
        with pytest.raises(ExperimentError):
            compare_methods(
                L2Distance(), split.database, split.queries, micro_scale, methods=("Bogus",)
            )

    def test_subset_of_methods(self, micro_scale):
        dataset = make_gaussian_clusters(n_objects=100, n_dims=4, seed=30)
        split = RetrievalSplit.from_dataset(dataset, n_queries=12, seed=31)
        comparison = compare_methods(
            L2Distance(),
            split.database,
            split.queries,
            micro_scale,
            methods=("FastMap", "Se-QS"),
            seed=32,
        )
        assert set(comparison.methods) == {"FastMap", "Se-QS"}
        assert comparison.preprocessing_distance_evaluations > 0


class TestReporting:
    def test_cost_table_contains_all_cells(self, micro_comparison):
        text = format_cost_table(micro_comparison)
        assert "FastMap" in text and "Se-QS" in text
        # one row per (k, accuracy) pair
        data_rows = [l for l in text.splitlines()[3:] if l.strip()]
        assert len(data_rows) == len(micro_comparison.ks) * len(micro_comparison.accuracies)

    def test_figure_series_header(self, micro_comparison):
        text = format_figure_series(micro_comparison, accuracy=0.9)
        assert "90% accuracy" in text
        assert str(micro_comparison.brute_force_cost) in text

    def test_format_comparison_includes_summary(self, micro_comparison):
        text = format_comparison(micro_comparison)
        assert "method summary" in text
        assert "train_error" in text

    def test_format_table1_drops_missing_grid_points(self, micro_comparison):
        text = format_table1({"micro": micro_comparison}, ks=(1, 50), accuracies=(0.9,))
        assert " 1 " in text or "1  " in text
        assert "50" not in text.splitlines()[2]  # k=50 not evaluated at micro scale

    def test_speedup_table_positive(self, micro_comparison):
        table = speedup_table(micro_comparison, accuracy=0.9)
        for per_k in table.values():
            for value in per_k.values():
                assert value >= 1.0


class TestFigure1:
    def test_caption_statistics_reproduced(self):
        result = run_figure1(seed=7)
        assert result.n_triples == 3800
        # The full embedding is better overall than each single coordinate...
        for ref_error in result.reference_errors:
            assert result.full_embedding_error < ref_error
        # ...but each special query is served better by its own coordinate,
        # for at least 2 of the 3 queries (the qualitative claim of Figure 1).
        assert sum(result.query_sensitive_wins()) >= 2

    def test_summary_text(self):
        result = run_figure1(seed=7)
        text = result.summary()
        assert "triple error" in text
        assert "q1" in text

    def test_custom_sizes(self):
        result = run_figure1(n_database=12, n_queries=6, n_references=2, seed=3)
        assert result.n_triples == 6 * 12 * 11
        assert len(result.reference_errors) == 2


class TestTiming:
    def test_throughputs_positive(self):
        timing = run_timing(n_pairs=4, shape_context_points=12, series_length=32)
        assert timing.shape_context_per_second > 0
        assert timing.dtw_per_second > 0
        assert timing.vector_l1_per_second > timing.dtw_per_second
        assert "shape context" in timing.summary()

    def test_per_query_seconds(self):
        timing = TimingResult(
            shape_context_per_second=10.0, dtw_per_second=100.0, vector_l1_per_second=1e6
        )
        assert timing.per_query_seconds(50, "shape_context") == pytest.approx(5.0)
        assert timing.per_query_seconds(50, "dtw") == pytest.approx(0.5)
        with pytest.raises(ExperimentError):
            timing.per_query_seconds(10, "bogus")

    def test_speedup_report(self, micro_comparison):
        timing = TimingResult(
            shape_context_per_second=10.0, dtw_per_second=100.0, vector_l1_per_second=1e6
        )
        text = speedup_report(micro_comparison, accuracy=0.9, k=1, timing=timing)
        assert "Speed-up over brute force" in text
        assert "x)" in text

    def test_retrieval_timing(self):
        from repro.experiments import run_retrieval_timing

        result = run_retrieval_timing(
            n_database=60,
            n_queries=5,
            k=3,
            p=10,
            dim=4,
            n_shards=3,
            n_jobs=1,
            series_length=24,
        )
        assert result.single_seconds > 0 and result.sharded_seconds > 0
        assert result.n_shards == 3
        assert "query_many throughput" in result.summary()


class TestAblations:
    @pytest.fixture(scope="class")
    def dtw_split(self):
        from repro import make_timeseries_dataset

        database, queries = make_timeseries_dataset(
            n_database=90, n_queries=15, n_seeds=8, length=40, seed=40
        )
        return database, queries

    @pytest.mark.slow
    def test_k1_ablation_runs(self, dtw_split):
        database, queries = dtw_split
        scale = TINY.with_overrides(
            database_size=90, n_queries=15, n_candidates=30, n_training_objects=30,
            n_triples=500, n_rounds=8, classifiers_per_round=15, ks=(1, 5), kmax=5,
        )
        result = run_k1_ablation(
            ConstrainedDTW(), database, queries, scale=scale,
            k1_values=(1, 3, 9), k=1, accuracy=0.9, seed=1,
        )
        assert set(result.costs_by_k1) <= {1, 3, 9}
        assert result.best_k1() in result.costs_by_k1
        assert "k1 ablation" in result.summary()

    def test_k1_ablation_validates_grid(self, dtw_split):
        database, queries = dtw_split
        with pytest.raises(ExperimentError):
            run_k1_ablation(
                ConstrainedDTW(), database, queries, scale=TINY, k=999, accuracy=0.9
            )

    def test_dimension_ablation_monotone_embedding_cost(self):
        dataset = make_gaussian_clusters(n_objects=100, n_dims=5, seed=50)
        split = RetrievalSplit.from_dataset(dataset, n_queries=12, seed=51)
        scale = TINY.with_overrides(
            database_size=88, n_queries=12, n_candidates=30, n_training_objects=30,
            n_triples=400, n_rounds=10, classifiers_per_round=15, kmax=5, ks=(1, 5),
        )
        entries = run_dimension_ablation(
            L2Distance(), split.database, split.queries, scale=scale, k=1, accuracy=0.9, seed=2
        )
        assert len(entries) >= 2
        dims = [e.dim for e in entries]
        embed_costs = [e.embedding_cost for e in entries]
        assert dims == sorted(dims)
        assert embed_costs == sorted(embed_costs)
        for entry in entries:
            assert entry.total_cost >= entry.p
