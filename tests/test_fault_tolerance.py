"""Chaos suite: the serving stack under injected faults.

The invariant under every scenario is the strongest one the paper's
filter-and-refine shape affords: refine work is pure over ``(index pair)
-> distance``, so recovery — respawn and resubmit, serial fallback,
degraded mode — must reproduce the healthy serial path *bit-identically*
(same neighbors, same distances, same per-query exact-evaluation counts).
A fault may cost latency; it may never cost correctness, and it may never
double-charge a pair that reached the store before the crash.

Faults are injected through :class:`repro.testing.faults.FaultPlan` (the
``PersistentPool.faults`` seam) and the file corruptors in the same
module; nothing here monkeypatches library internals.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import (
    EmbeddingIndex,
    IndexConfig,
    L2Distance,
    PersistentPool,
    RetrievalSplit,
    ServingError,
    ServingTimeout,
    TrainingConfig,
    make_gaussian_clusters,
)
from repro.distances.context import DistanceStore
from repro.exceptions import ArtifactError, DistanceError
from repro.index import artifacts
from repro.index.pool import _close_live_pools
from repro.testing import FaultPlan, flip_byte, truncate_file

pytestmark = pytest.mark.chaos


# --------------------------------------------------------------------- #
# Fixtures                                                              #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def chaos_split():
    dataset = make_gaussian_clusters(n_objects=80, n_clusters=4, n_dims=5, seed=11)
    return RetrievalSplit.from_dataset(dataset, n_queries=10, seed=12)


@pytest.fixture(scope="module")
def chaos_config():
    return IndexConfig(
        training=TrainingConfig(
            n_candidates=10,
            n_training_objects=24,
            n_triples=80,
            n_rounds=4,
            classifiers_per_round=10,
            seed=23,
        ),
        backend="filter_refine",
        n_jobs=None,
    )


@pytest.fixture(scope="module")
def reference(chaos_split, chaos_config):
    """Healthy serial results for the whole query batch (the oracle)."""
    queries = list(chaos_split.queries)
    with EmbeddingIndex.build(
        L2Distance(), chaos_split.database, chaos_config
    ) as index:
        results = index.query_many(queries, k=3, p=12)
        evaluations = index.distance_evaluations
    return {"results": results, "evaluations": evaluations}


def _build(chaos_split, chaos_config):
    return EmbeddingIndex.build(L2Distance(), chaos_split.database, chaos_config)


def _attach(index, pool):
    """Wire a (faulty) pool into a serially-built index's query path."""
    index.pool = pool
    index.context.pool = pool
    index._owns_pool = True


def _assert_same_results(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
        assert np.array_equal(a.neighbor_distances, b.neighbor_distances)
        assert a.refine_distance_computations == b.refine_distance_computations
        assert (
            a.embedding_distance_computations == b.embedding_distance_computations
        )


# Module-level pool task (pickled by reference).
def _double(_state, chunk):
    return [2 * value for value in chunk]


# --------------------------------------------------------------------- #
# Pool supervision                                                      #
# --------------------------------------------------------------------- #


class TestPoolSupervision:
    def test_respawn_after_worker_kill(self):
        plan = FaultPlan(kill_after_chunks=2)
        with PersistentPool(2, faults=plan) as pool:
            chunks = [[1], [2], [3], [4]]
            results = pool.run(_double, None, chunks, signature="sup")
            assert results == [[2], [4], [6], [8]]
            assert pool.restarts == 1
            assert pool.failed_jobs == 1
            health = pool.health()
            assert health["restarts"] == 1
            assert health["failed_jobs"] == 1

    def test_retries_exhausted_propagates(self):
        plan = FaultPlan(kill_after_chunks=1, kill_every_time=True)
        with PersistentPool(2, max_retries=1, faults=plan) as pool:
            with pytest.raises(Exception) as excinfo:
                pool.run(_double, None, [[1], [2]], signature="doom")
            from repro.index.pool import WORKER_FAILURES

            assert isinstance(excinfo.value, WORKER_FAILURES)
            assert pool.failed_jobs >= 2  # the first try and the retry

    def test_submit_after_kill_respawns(self):
        plan = FaultPlan(kill_after_chunks=1)
        with PersistentPool(2, faults=plan) as pool:
            first = pool.run(_double, None, [[5]], signature="sub")
            assert first == [[10]]
            assert pool.restarts == 1
            # The respawned pool keeps serving (and its published state).
            second = pool.run(_double, None, [[6], [7]], signature="sub")
            assert second == [[12], [14]]
            assert pool.restarts == 1

    def test_close_idempotent_and_atexit_safe(self):
        pool = PersistentPool(2)
        pool.run(_double, None, [[1]], signature="idem")
        pool.close()
        pool.close()  # second close is a no-op
        assert pool.closed
        _close_live_pools()  # the atexit hook tolerates closed pools

    def test_job_timeout_leaves_job_collectable(self):
        plan = FaultPlan(delay_seconds=0.8)
        with PersistentPool(1, faults=plan) as pool:
            job = pool.submit(_double, None, [[1]], signature="slow")
            with pytest.raises(ServingTimeout):
                job.results(timeout=0.05)
            # Not a failure: waiting again collects the same job.
            assert job.results(timeout=30.0) == [[2]]


# --------------------------------------------------------------------- #
# Serving under worker death                                            #
# --------------------------------------------------------------------- #


class TestServingRecovery:
    def test_worker_kill_mid_query_many_bit_identical(
        self, chaos_split, chaos_config, reference
    ):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            _attach(index, PersistentPool(2, faults=FaultPlan(kill_after_chunks=3)))
            results = index.query_many(queries, k=3, p=12, n_jobs=2)
            _assert_same_results(results, reference["results"])
            assert index.distance_evaluations == reference["evaluations"]
            assert index.pool.restarts == 1

    def test_worker_kill_mid_stream_bit_identical(
        self, chaos_split, chaos_config, reference
    ):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            _attach(index, PersistentPool(2, faults=FaultPlan(kill_after_chunks=3)))
            pairs = list(index.stream(queries, k=3, p=12, n_jobs=2, order="submission"))
            assert [position for position, _ in pairs] == list(range(len(queries)))
            _assert_same_results([r for _, r in pairs], reference["results"])
            # No double-charge: retried pairs already in the store stay
            # free, so the total evaluation count matches the serial path.
            assert index.distance_evaluations == reference["evaluations"]
            assert index.pool.restarts == 1
            health = index.health()
            assert health["degraded"] is False
            assert health["pool"]["restarts"] == 1

    def test_corrupt_reply_recomputed_not_served(
        self, chaos_split, chaos_config, reference
    ):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            _attach(index, PersistentPool(2, faults=FaultPlan(corrupt_chunk=1)))
            ticket = index.submit(queries[0], k=3, p=12, n_jobs=2)
            result = ticket.result()
            expected = reference["results"][0]
            assert np.array_equal(result.neighbor_indices, expected.neighbor_indices)
            assert np.array_equal(
                result.neighbor_distances, expected.neighbor_distances
            )
            assert (
                result.refine_distance_computations
                == expected.refine_distance_computations
            )
            assert index.serving.fallbacks >= 1

    def test_corrupt_reply_in_blocking_query_many(
        self, chaos_split, chaos_config, reference
    ):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            _attach(index, PersistentPool(2, faults=FaultPlan(corrupt_chunk=2)))
            results = index.query_many(queries, k=3, p=12, n_jobs=2)
            _assert_same_results(results, reference["results"])
            assert index.distance_evaluations == reference["evaluations"]

    def test_degraded_mode_after_consecutive_failures(
        self, chaos_split, chaos_config, reference
    ):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            plan = FaultPlan(kill_after_chunks=1, kill_every_time=True)
            _attach(index, PersistentPool(2, max_retries=0, faults=plan))
            results = []
            for query in queries:
                results.append(index.submit(query, k=3, p=12, n_jobs=2).result())
            _assert_same_results(results, reference["results"])
            assert index.distance_evaluations == reference["evaluations"]
            server = index.serving
            assert server.degraded is True
            assert server.fallbacks >= server.DEGRADE_AFTER
            assert index.health()["degraded"] is True
            assert index.health()["serving"]["degraded"] is True


# --------------------------------------------------------------------- #
# Deadlines, retries, partial results                                   #
# --------------------------------------------------------------------- #


class TestDeadlines:
    def test_deadline_resolves_to_typed_error(self, chaos_split, chaos_config):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            _attach(index, PersistentPool(2, faults=FaultPlan(delay_seconds=1.2)))
            started = time.monotonic()
            ticket = index.submit(queries[0], k=3, p=12, n_jobs=2, deadline=0.3)
            with pytest.raises(ServingTimeout) as excinfo:
                ticket.result()
            elapsed = time.monotonic() - started
            assert isinstance(excinfo.value, ServingError)
            assert isinstance(excinfo.value, TimeoutError)
            assert elapsed < 5.0  # resolved near the deadline, no hang
            # Terminal: every later result() call returns the same outcome.
            with pytest.raises(ServingTimeout):
                ticket.result()

    def test_deadline_partial_result_ranks_resolved(
        self, chaos_split, chaos_config
    ):
        queries = list(chaos_split.queries)
        query = queries[0]
        with _build(chaos_split, chaos_config) as expected_index:
            expected = expected_index.query(query, k=3, p=6)
        with _build(chaos_split, chaos_config) as index:
            # Warm exactly the p=6 prefix of the candidate list, serially.
            index.query(query, k=3, p=6)
            _attach(index, PersistentPool(2, faults=FaultPlan(delay_seconds=1.2)))
            ticket = index.submit(
                query, k=3, p=12, n_jobs=2, deadline=0.3, allow_partial=True
            )
            result = ticket.result()
            assert result.partial is True
            # The resolved candidates are the warmed p=6 prefix, so the
            # partial ranking equals the healthy p=6 ranking exactly.
            assert np.array_equal(result.neighbor_indices, expected.neighbor_indices)
            assert np.array_equal(
                result.neighbor_distances, expected.neighbor_distances
            )
            assert result.refine_distance_computations == 0

    def test_stream_keeps_draining_after_failure(self, chaos_split, chaos_config):
        queries = list(chaos_split.queries)[:4]
        with _build(chaos_split, chaos_config) as index:
            _attach(index, PersistentPool(2, faults=FaultPlan(delay_seconds=1.2)))
            pairs = list(
                index.stream(
                    queries, k=3, p=12, n_jobs=2, order="submission", deadline=0.3
                )
            )
            assert len(pairs) == len(queries)  # nothing dropped, no hang
            assert all(isinstance(r, ServingError) for _, r in pairs)

    def test_result_timeout_is_not_terminal(self, chaos_split, chaos_config):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as reference_index:
            expected = reference_index.query(queries[0], k=3, p=12)
        with _build(chaos_split, chaos_config) as index:
            _attach(index, PersistentPool(2, faults=FaultPlan(delay_seconds=0.8)))
            ticket = index.submit(queries[0], k=3, p=12, n_jobs=2)
            with pytest.raises(ServingTimeout):
                ticket.result(timeout=0.05)
            # The ticket stays pending and a later wait completes it.
            result = ticket.result(timeout=30.0)
            assert np.array_equal(result.neighbor_indices, expected.neighbor_indices)
            assert np.array_equal(
                result.neighbor_distances, expected.neighbor_distances
            )

    def test_cancel_races_completion_and_loses(self, chaos_split, chaos_config):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            _attach(index, PersistentPool(2))
            ticket = index.submit(queries[0], k=3, p=12, n_jobs=2)
            assert ticket._job is not None
            deadline = time.monotonic() + 30.0
            while not ticket._job.done() and time.monotonic() < deadline:
                time.sleep(0.01)
            # The pool reply has arrived but _finish has not run: cancel
            # must refuse (the work is unabandonable) and the result must
            # still be collectable.
            assert ticket.cancel() is False
            result = ticket.result()
            assert result.neighbor_indices.size > 0


# --------------------------------------------------------------------- #
# The query planner under faults                                        #
# --------------------------------------------------------------------- #


class TestPlannerUnderFaults:
    """The adaptive planner re-plans around dead infrastructure.

    Backend and fan-out choices come from live signals (pool health, the
    remote's ``health()`` probe); when those die, the planner must fall
    back onto the serial local path — bit-identically, since every choice
    only moves *where* the same work runs.
    """

    def test_dead_pool_replans_onto_the_serial_path(
        self, chaos_split, chaos_config, reference
    ):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            index.enable_planner()
            planner = index._backend
            pool = PersistentPool(2)
            _attach(index, pool)
            # Live pool, enough predicted misses: the planner fans out.
            assert planner.explain(3, p=24)["n_jobs"] == 2
            pool.close()
            # Dead pool: the same decision function re-plans serial.
            assert planner.explain(3, p=24)["n_jobs"] is None
            results = index.query_many(queries, k=3, p=12)
            _assert_same_results(results, reference["results"])
            assert index.distance_evaluations == reference["evaluations"]

    def test_killed_workers_under_planned_fixed_p_stay_bit_identical(
        self, chaos_split, chaos_config, reference
    ):
        queries = list(chaos_split.queries)
        with _build(chaos_split, chaos_config) as index:
            index.enable_planner()
            _attach(index, PersistentPool(2, faults=FaultPlan(kill_after_chunks=3)))
            results = index.query_many(queries, k=3, p=12, n_jobs=2)
            _assert_same_results(results, reference["results"])
            assert index.distance_evaluations == reference["evaluations"]
            assert index.pool.restarts == 1

    def test_dead_remote_replans_onto_the_local_path(
        self, chaos_split, chaos_config
    ):
        queries = list(chaos_split.queries)

        class DeadRemote:
            """A shard service whose health probe is already unreachable."""

            probes = 0

            def query_many(self, objects, k, p):  # pragma: no cover
                raise AssertionError("a dead remote must never be queried")

            def health(self):
                DeadRemote.probes += 1
                raise ConnectionError("connection refused")

        with _build(chaos_split, chaos_config) as healthy:
            healthy.enable_planner()
            expected = healthy.query_many(queries, k=3)
        with _build(chaos_split, chaos_config) as index:
            index.enable_planner()
            planner = index._backend
            planner.attach_remote(DeadRemote())
            # Fit a round-trip cost that would win if the remote were up.
            planner.model.remote_round_trip_seconds = 1e-9
            results = index.query_many(queries, k=3)
            assert DeadRemote.probes >= 1
            assert planner._last_decision["backend"] == "flat"
            _assert_same_results(results, expected)


# --------------------------------------------------------------------- #
# Artifact and store corruption                                         #
# --------------------------------------------------------------------- #


class TestArtifactCorruption:
    @pytest.fixture()
    def saved(self, tmp_path, chaos_split, chaos_config):
        with _build(chaos_split, chaos_config) as index:
            index.query_many(list(chaos_split.queries)[:2], k=3, p=12)
            index.save(tmp_path / "artifact")
        return tmp_path / "artifact"

    def _reopen(self, saved, chaos_split):
        return EmbeddingIndex.open(saved, chaos_split.database, L2Distance())

    def test_truncated_store_raises_typed_error(self, saved, chaos_split):
        truncate_file(saved / artifacts.STORE_NAME, keep_fraction=0.5)
        with pytest.raises(DistanceError) as excinfo:
            self._reopen(saved, chaos_split)
        assert artifacts.STORE_NAME in str(excinfo.value)

    def test_bitflipped_store_raises_typed_error(self, tmp_path, saved):
        store_path = saved / artifacts.STORE_NAME
        # Flip a data byte (mid-file): the zip structure survives but a
        # member's CRC/deflate stream does not — that must still surface
        # as a typed error, not a raw zipfile/zlib traceback.
        flip_byte(store_path, offset=store_path.stat().st_size // 2)
        with pytest.raises(DistanceError) as excinfo:
            DistanceStore.load(store_path)
        assert artifacts.STORE_NAME in str(excinfo.value)

    def test_truncated_arrays_raises_typed_error(self, saved, chaos_split):
        truncate_file(saved / artifacts.ARRAYS_NAME, keep_fraction=0.3)
        with pytest.raises(ArtifactError) as excinfo:
            self._reopen(saved, chaos_split)
        assert artifacts.ARRAYS_NAME in str(excinfo.value)

    def test_corrupt_manifest_raises_typed_error(self, saved, chaos_split):
        truncate_file(saved / artifacts.MANIFEST_NAME, keep_fraction=0.4)
        with pytest.raises(ArtifactError) as excinfo:
            self._reopen(saved, chaos_split)
        assert artifacts.MANIFEST_NAME in str(excinfo.value)

    def test_truncated_model_raises_typed_error(self, saved, chaos_split):
        truncate_file(saved / artifacts.MODEL_NAME, keep_fraction=0.4)
        with pytest.raises(ArtifactError) as excinfo:
            self._reopen(saved, chaos_split)
        assert artifacts.MODEL_NAME in str(excinfo.value)
