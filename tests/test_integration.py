"""End-to-end integration tests: the full pipeline on real (small) workloads.

These tests exercise the same code paths as the paper's experiments — train,
embed, filter-and-refine, evaluate — and assert the *qualitative* claims that
should hold at any scale:

* filter-and-refine with a trained embedding retrieves true nearest neighbors
  with far fewer exact distance computations than brute force;
* the trained methods beat FastMap on non-metric data;
* the query-sensitive model is a working drop-in for the query-insensitive
  one (same API, same evaluation protocol).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BoostMapTrainer,
    ConstrainedDTW,
    FilterRefineRetriever,
    TrainingConfig,
    ground_truth_neighbors,
)
from repro.experiments import ExperimentScale, compare_methods
from repro.retrieval.evaluation import filter_ranks, required_filter_sizes
from repro.retrieval.sweep import DimensionSweep

# End-to-end reproductions (training + retrieval on DTW workloads) dominate
# the suite's wall-clock; `pytest -m "not slow"` skips them for a fast loop.
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def dtw_scale():
    return ExperimentScale(
        name="integration",
        database_size=100,
        n_queries=20,
        n_candidates=35,
        n_training_objects=35,
        n_triples=1200,
        n_rounds=16,
        classifiers_per_round=25,
        intervals_per_candidate=5,
        dims=(2, 4, 8, 16),
        ks=(1, 5),
        accuracies=(0.9, 1.0),
        kmax=5,
    )


@pytest.fixture(scope="module")
def dtw_comparison(timeseries_split, dtw, dtw_scale):
    scale = dtw_scale.with_overrides(
        database_size=len(timeseries_split.database),
        n_queries=len(timeseries_split.queries),
    )
    return compare_methods(
        dtw,
        timeseries_split.database,
        timeseries_split.queries,
        scale,
        seed=77,
        dataset_name="integration-dtw",
    )


class TestEndToEndRetrieval:
    def test_filter_refine_recovers_true_neighbors_cheaply(
        self, timeseries_split, dtw
    ):
        """On the time-series data, the trained Se-QS embedding retrieves the
        true nearest neighbor for most queries at a fraction of brute force."""
        config = TrainingConfig(
            n_candidates=35,
            n_training_objects=35,
            n_triples=1200,
            n_rounds=14,
            classifiers_per_round=25,
            kmax=5,
            seed=3,
        )
        result = BoostMapTrainer(dtw, timeseries_split.database, config).train()
        model = result.model

        ground_truth = ground_truth_neighbors(
            dtw, timeseries_split.database, timeseries_split.queries, k_max=1
        )
        retriever = FilterRefineRetriever(dtw, timeseries_split.database, model)
        p = max(10, len(timeseries_split.database) // 5)
        hits = 0
        for qi, query in enumerate(timeseries_split.queries):
            retrieved = retriever.query(query, k=1, p=p)
            if retrieved.neighbor_indices[0] == ground_truth.indices[qi, 0]:
                hits += 1
            assert retrieved.total_distance_computations < len(
                timeseries_split.database
            )
        assert hits >= int(0.75 * len(timeseries_split.queries))

    def test_refined_distances_are_exact(self, timeseries_split, dtw, dtw_comparison):
        """The refine step reports true distances (spot check)."""
        config = TrainingConfig(
            n_candidates=25, n_training_objects=25, n_triples=500,
            n_rounds=6, classifiers_per_round=15, kmax=5, seed=9,
        )
        model = BoostMapTrainer(dtw, timeseries_split.database, config).train().model
        retriever = FilterRefineRetriever(dtw, timeseries_split.database, model)
        query = timeseries_split.queries[0]
        result = retriever.query(query, k=2, p=10)
        for idx, dist in zip(result.neighbor_indices, result.neighbor_distances):
            assert dist == pytest.approx(dtw(query, timeseries_split.database[int(idx)]))


class TestPaperShape:
    """Qualitative claims of the paper's evaluation, at integration-test scale."""

    def test_all_methods_beat_brute_force_at_90pct(self, dtw_comparison):
        for tag, result in dtw_comparison.methods.items():
            assert result.cost(1, 0.9) < dtw_comparison.brute_force_cost

    def test_trained_methods_beat_fastmap_at_largest_k(self, dtw_comparison):
        """At the largest evaluated k, the boosted embeddings need fewer
        exact distances than FastMap on the non-metric DTW data."""
        k = max(dtw_comparison.ks)
        fastmap_cost = dtw_comparison.method("FastMap").cost(k, 0.9)
        best_trained = min(
            dtw_comparison.method(tag).cost(k, 0.9)
            for tag in ("Ra-QI", "Ra-QS", "Se-QI", "Se-QS")
        )
        assert best_trained <= fastmap_cost

    def test_proposed_method_close_to_best(self, dtw_comparison):
        """Se-QS is the best or within 35% of the best method at k=1, 90%.

        (At paper scale Se-QS wins outright; at this tiny scale we only
        require that it is competitive, which guards against regressions that
        break the query-sensitive machinery.)"""
        costs = {
            tag: dtw_comparison.method(tag).cost(1, 0.9)
            for tag in dtw_comparison.methods
        }
        assert costs["Se-QS"] <= 1.35 * min(costs.values())

    def test_dimension_sweep_consistent_with_runner(
        self, timeseries_split, dtw, dtw_comparison, dtw_scale
    ):
        """Re-running the sweep by hand for Se-QS reproduces the runner's cost."""
        # The runner stores only the final numbers; rebuild the sweep for one
        # method and check the evaluation protocol is deterministic.
        scale = dtw_scale.with_overrides(
            database_size=len(timeseries_split.database),
            n_queries=len(timeseries_split.queries),
        )
        repeat = compare_methods(
            dtw,
            timeseries_split.database,
            timeseries_split.queries,
            scale,
            methods=("Se-QS",),
            seed=77,
            dataset_name="repeat",
        )
        assert (
            repeat.method("Se-QS").costs[0.9][1].cost
            == dtw_comparison.method("Se-QS").cost(1, 0.9)
        )


class TestRequiredFilterSizes:
    def test_better_embeddings_need_smaller_filters(self, timeseries_split, dtw):
        """A trained model should (weakly) dominate a 1-dimensional truncation
        of itself in median required filter size — more coordinates, better
        filter ordering."""
        config = TrainingConfig(
            n_candidates=30, n_training_objects=30, n_triples=800,
            n_rounds=12, classifiers_per_round=20, kmax=5, seed=13,
        )
        model = BoostMapTrainer(dtw, timeseries_split.database, config).train().model
        if model.dim < 3:
            pytest.skip("model too small for the comparison")
        ground_truth = ground_truth_neighbors(
            dtw, timeseries_split.database, timeseries_split.queries, k_max=1
        )
        db_vectors = model.embed_many(list(timeseries_split.database))
        query_vectors = model.embed_many(list(timeseries_split.queries))
        full = filter_ranks(model, db_vectors, query_vectors, ground_truth)
        tiny = model.truncate(1)
        reduced = filter_ranks(
            tiny, db_vectors[:, :1], query_vectors[:, :1], ground_truth
        )
        assert np.median(required_filter_sizes(full, 1)) <= np.median(
            required_filter_sizes(reduced, 1)
        )
