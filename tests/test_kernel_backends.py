"""Parity and registry tests for the pluggable DP kernel backends.

Covers the acceptance surface of :mod:`repro.distances.kernels`:

* backend-level parity (every activatable backend vs the numpy reference,
  to 1e-12) on every shape class — uniform batches, mixed lengths,
  length-1 series, bands wider than the series, multi-dimensional series,
  unit and weighted/asymmetric edit costs;
* measure-level parity: ``ConstrainedDTW``/``EditDistance``/
  ``WeightedEditDistance`` pinned to each backend agree with the numpy
  pin on randomized workloads;
* registry behavior: automatic preference, explicit names failing loudly,
  the ``REPRO_KERNEL_BACKEND`` env override, per-measure overrides,
  pickling measures by backend *name*, and rejection of a backend that
  flunks the activation parity check;
* import robustness: ``import repro`` works in a subprocess with numba
  absent, and a forced-fallback subprocess resolves the numpy backend.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.distances import kernels as kernels_module
from repro.distances.dtw import ConstrainedDTW, _as_series, _resolve_radius
from repro.distances.edit import EditDistance, WeightedEditDistance
from repro.distances.kernels import (
    KERNEL_ENV,
    KernelUnavailable,
    available_kernel_backends,
    get_kernel_backend,
    kernel_backend_status,
    register_kernel_backend,
    registered_kernel_backends,
    reset_kernel_backends,
    set_default_kernel_backend,
)
from repro.distances.kernels.numpy_backend import NumpyBackend
from repro.exceptions import DistanceError

SRC_DIR = str(Path(__file__).resolve().parents[1] / "src")

#: Backends beyond the numpy reference that activate on this host (the
#: cext backend whenever a C compiler is present; numba when importable).
COMPILED_AVAILABLE = [
    name for name in available_kernel_backends() if name != "numpy"
]


@pytest.fixture(autouse=True)
def _registry_guard():
    """Restore the registry and the env override after every test."""
    saved_env = os.environ.get(KERNEL_ENV)
    saved_factories = dict(kernels_module._FACTORIES)
    saved_preference = list(kernels_module._PREFERENCE)
    yield
    kernels_module._FACTORIES.clear()
    kernels_module._FACTORIES.update(saved_factories)
    kernels_module._PREFERENCE[:] = saved_preference
    if saved_env is None:
        os.environ.pop(KERNEL_ENV, None)
    else:
        os.environ[KERNEL_ENV] = saved_env
    reset_kernel_backends()


def assert_close(got, want):
    got = np.asarray(got, dtype=float)
    want = np.asarray(want, dtype=float)
    assert got.shape == want.shape
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-12)


# --------------------------------------------------------------------------- #
# Backend-level parity across shape classes                                   #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("name", COMPILED_AVAILABLE or ["numpy"])
class TestBackendParity:
    """Each activatable backend agrees with the numpy reference to 1e-12."""

    def test_dtw_uniform_multidim(self, name, rng):
        backend = get_kernel_backend(name)
        reference = NumpyBackend()
        xs = rng.normal(size=(7, 3))
        ys = rng.normal(size=(4, 5, 3))
        for radius in (2, 3, 6):  # >= |7 - 5|, from narrow to full band
            assert_close(
                backend.dtw_batch(xs, ys, radius),
                reference.dtw_batch(xs, ys, radius),
            )

    def test_dtw_length_one_series(self, name, rng):
        backend = get_kernel_backend(name)
        reference = NumpyBackend()
        # length-1 query against longer targets, and vice versa: the band
        # radius must absorb the full length difference.
        x1 = rng.normal(size=(1, 2))
        ys = rng.normal(size=(3, 4, 2))
        assert_close(backend.dtw_batch(x1, ys, 3), reference.dtw_batch(x1, ys, 3))
        xs = rng.normal(size=(5, 2))
        y1 = rng.normal(size=(3, 1, 2))
        assert_close(backend.dtw_batch(xs, y1, 4), reference.dtw_batch(xs, y1, 4))

    def test_dtw_band_wider_than_series(self, name, rng):
        backend = get_kernel_backend(name)
        reference = NumpyBackend()
        xs = rng.normal(size=(6, 1))
        ys = rng.normal(size=(2, 6, 1))
        assert_close(
            backend.dtw_batch(xs, ys, 50), reference.dtw_batch(xs, ys, 50)
        )

    def test_dtw_mixed_lengths(self, name, rng):
        backend = get_kernel_backend(name)
        reference = NumpyBackend()
        n = 6
        xs = rng.normal(size=(n, 2))
        lengths = np.array([1, 3, 9], dtype=np.int64)
        ys = np.zeros((3, int(lengths.max()), 2))
        for i, m in enumerate(lengths):
            ys[i, :m] = rng.normal(size=(m, 2))
        radii = np.array(
            [
                _resolve_radius(n, int(m), band_fraction=0.25, band_width=None)
                for m in lengths
            ],
            dtype=np.int64,
        )
        assert_close(
            backend.dtw_batch_mixed(xs, ys, lengths, radii),
            reference.dtw_batch_mixed(xs, ys, lengths, radii),
        )

    def test_edit_unit_and_weighted(self, name, rng):
        backend = get_kernel_backend(name)
        reference = NumpyBackend()
        x_codes = np.array([0, 2, 1, 3, 1], dtype=np.int64)
        lengths = np.array([5, 1, 3, 0], dtype=np.int64)
        stack = np.zeros((4, 5), dtype=np.int64)
        for i, m in enumerate(lengths):
            stack[i, :m] = rng.integers(0, 5, size=int(m))
        unit = np.zeros((0, 0))
        assert_close(
            backend.edit_batch(x_codes, stack, lengths, 1.0, 1.0, unit, 1.0),
            reference.edit_batch(x_codes, stack, lengths, 1.0, 1.0, unit, 1.0),
        )
        # Asymmetric costs and a partial table (codes >= 2 are untabled).
        table = np.array([[0.0, 0.3], [0.45, 0.0]])
        assert_close(
            backend.edit_batch(x_codes, stack, lengths, 0.7, 1.3, table, 0.55),
            reference.edit_batch(x_codes, stack, lengths, 0.7, 1.3, table, 0.55),
        )


# --------------------------------------------------------------------------- #
# Measure-level parity (the property suite RP010 references)                  #
# --------------------------------------------------------------------------- #


@pytest.mark.parametrize("name", COMPILED_AVAILABLE or ["numpy"])
class TestMeasureParity:
    def test_constrained_dtw_matches_numpy_pin(self, name, rng):
        pinned = ConstrainedDTW(band_fraction=0.2, kernel=name)
        reference = ConstrainedDTW(band_fraction=0.2, kernel="numpy")
        # Mixed lengths (1 included), multi-dim, plus a 1-D series the
        # measure reshapes itself.
        x = rng.normal(size=(9, 2))
        targets = [
            rng.normal(size=(m, 2)) for m in (1, 4, 9, 9, 13)
        ]
        assert_close(pinned.compute_many(x, targets), reference.compute_many(x, targets))
        x1d = rng.normal(size=8)
        t1d = [rng.normal(size=m) for m in (3, 8, 12)]
        assert_close(pinned.compute_many(x1d, t1d), reference.compute_many(x1d, t1d))
        assert pinned.compute(x, targets[1]) == pytest.approx(
            reference.compute(x, targets[1]), rel=1e-12, abs=1e-12
        )

    def test_edit_distance_matches_numpy_pin(self, name, rng):
        pinned = EditDistance(kernel=name)
        reference = EditDistance(kernel="numpy")
        alphabet = "abcdef"
        words = [
            "".join(rng.choice(list(alphabet), size=int(m)))
            for m in rng.integers(0, 12, size=10)
        ]
        got = pinned.compute_many("deadbeef", words)
        want = reference.compute_many("deadbeef", words)
        assert_close(got, want)
        # Unit edit distances are integers; both backends must agree exactly.
        assert np.array_equal(got, want)

    def test_weighted_edit_matches_numpy_pin(self, name, rng):
        costs = {("a", "b"): 0.25, ("b", "c"): 0.5}
        pinned = WeightedEditDistance(
            substitution_costs=costs,
            insertion_cost=0.75,
            deletion_cost=1.25,
            default_substitution=0.6,
            kernel=name,
        )
        reference = WeightedEditDistance(
            substitution_costs=costs,
            insertion_cost=0.75,
            deletion_cost=1.25,
            default_substitution=0.6,
            kernel="numpy",
        )
        words = ["abc", "bac", "xyz", "", "aaaa", "cab"]
        assert_close(
            pinned.compute_many("abcabc", words),
            reference.compute_many("abcabc", words),
        )


# --------------------------------------------------------------------------- #
# Registry behavior                                                           #
# --------------------------------------------------------------------------- #


class TestRegistry:
    def test_numpy_always_active(self):
        assert "numpy" in available_kernel_backends()
        assert kernel_backend_status()["numpy"] == "active"

    def test_default_prefers_compiled_backend(self):
        if not COMPILED_AVAILABLE:
            pytest.skip("no compiled backend activates on this host")
        os.environ.pop(KERNEL_ENV, None)
        reset_kernel_backends()
        assert get_kernel_backend(None).name in COMPILED_AVAILABLE

    def test_unknown_name_fails_loudly(self):
        with pytest.raises(DistanceError, match="unknown kernel backend"):
            get_kernel_backend("definitely-not-a-backend")
        with pytest.raises(DistanceError, match="unknown kernel backend"):
            ConstrainedDTW(kernel="definitely-not-a-backend")

    def test_env_override_pins_default(self):
        os.environ[KERNEL_ENV] = "numpy"
        reset_kernel_backends()
        assert get_kernel_backend(None).name == "numpy"

    def test_set_default_exports_env(self):
        backend = set_default_kernel_backend("numpy")
        assert backend.name == "numpy"
        assert os.environ[KERNEL_ENV] == "numpy"
        assert get_kernel_backend(None).name == "numpy"

    def test_measures_pickle_by_backend_name(self):
        measure = ConstrainedDTW(band_fraction=0.3, kernel="numpy")
        clone = pickle.loads(pickle.dumps(measure))
        assert clone.kernel == "numpy"
        assert clone.kernel_backend.name == "numpy"
        x = np.array([0.0, 1.0, 2.5])
        y = np.array([0.5, 1.5, 2.0, 3.0])
        assert clone.compute(x, y) == measure.compute(x, y)
        # None = "process default" also survives pickling.
        default = pickle.loads(pickle.dumps(EditDistance()))
        assert default.kernel is None

    def test_parity_failure_rejects_backend(self):
        class _Wrong(NumpyBackend):
            name = "wrong"
            compiled = True

            def dtw_batch(self, xs, ys, radius):
                return super().dtw_batch(xs, ys, radius) + 1.0

        register_kernel_backend("wrong", _Wrong)
        assert registered_kernel_backends()[0] == "wrong" or (
            "wrong" in registered_kernel_backends()
        )
        # Explicit request: loud failure naming the parity check.
        with pytest.raises(DistanceError, match="parity"):
            get_kernel_backend("wrong")
        # Automatic selection: silently skipped, never chosen.
        os.environ.pop(KERNEL_ENV, None)
        reset_kernel_backends()
        assert get_kernel_backend(None).name != "wrong"
        assert "parity" in kernel_backend_status()["wrong"]

    def test_unavailable_factory_reports_reason(self):
        def _factory():
            raise KernelUnavailable("no such accelerator on this host")

        register_kernel_backend("phantom", _factory)
        status = kernel_backend_status()
        assert "no such accelerator" in status["phantom"]
        assert "phantom" not in available_kernel_backends()

    def test_crashing_factory_is_unavailable_not_fatal(self):
        def _factory():
            raise RuntimeError("boom")

        register_kernel_backend("crashy", _factory)
        os.environ.pop(KERNEL_ENV, None)
        reset_kernel_backends()
        # Default selection degrades past the crash...
        assert get_kernel_backend(None).name != "crashy"
        # ...but an explicit pin still fails loudly.
        with pytest.raises(DistanceError, match="failed to activate"):
            get_kernel_backend("crashy")


# --------------------------------------------------------------------------- #
# Input fast paths                                                            #
# --------------------------------------------------------------------------- #


class TestSeriesFastPath:
    def test_float64_2d_passes_through_uncopied(self):
        x = np.ascontiguousarray(np.arange(12, dtype=float).reshape(6, 2))
        assert _as_series(x, "x") is x

    def test_float64_1d_reshapes_as_view(self):
        x = np.arange(5, dtype=float)
        out = _as_series(x, "x")
        assert out.base is x and out.shape == (5, 1)

    def test_other_dtypes_still_convert(self):
        out = _as_series([1, 2, 3], "x")
        assert out.dtype == np.float64 and out.shape == (3, 1)


# --------------------------------------------------------------------------- #
# Import robustness without numba                                             #
# --------------------------------------------------------------------------- #


class TestImportWithoutNumba:
    def _run(self, code, env_extra=None):
        env = dict(os.environ, PYTHONPATH=SRC_DIR)
        env.pop(KERNEL_ENV, None)
        if env_extra:
            env.update(env_extra)
        return subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            timeout=180,
        )

    def test_import_repro_succeeds_without_numba(self):
        # The container this suite targets has no numba; when one is
        # present the import must still succeed, so only the status
        # assertion is conditional.
        code = (
            "import repro\n"
            "from repro.distances.kernels import kernel_backend_status\n"
            "status = kernel_backend_status()\n"
            "assert status['numpy'] == 'active', status\n"
            "try:\n"
            "    import numba  # noqa: F401\n"
            "except ImportError:\n"
            "    assert status['numba'] != 'active', status\n"
            "print('ok')\n"
        )
        proc = self._run(code)
        assert proc.returncode == 0, proc.stderr
        assert "ok" in proc.stdout

    def test_forced_fallback_env_resolves_numpy(self):
        code = (
            "from repro.distances.kernels import get_kernel_backend\n"
            "from repro.distances.dtw import ConstrainedDTW\n"
            "import numpy as np\n"
            "assert get_kernel_backend(None).name == 'numpy'\n"
            "d = ConstrainedDTW()\n"
            "assert d.kernel_backend.name == 'numpy'\n"
            "print(d.compute(np.arange(4.0), np.arange(5.0)))\n"
        )
        proc = self._run(code, env_extra={KERNEL_ENV: "numpy"})
        assert proc.returncode == 0, proc.stderr
