"""Tests for the cost-based query planner (``repro.retrieval.planner``).

The planner's acceptance bar is the exactness contract: with an explicit
``p`` (or ``mode="off"``) it is a bit-identical pass-through; in adaptive
mode every served result must equal the fixed-``p`` run whose ``p`` is the
planner's chosen ``p'`` — same neighbors, same distances, same honest
per-query evaluation charge.  The suite asserts that contract on the
flat, sharded and (stubbed) remote execution paths, plus the pure
decision layer (schedules, operating points, the cost model) and the
sweep-parity property that anchors it to ``run_sweep``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EmbeddingIndex,
    FilterRefineRetriever,
    IndexConfig,
    L2Distance,
    RetrievalSplit,
    ShardedRetriever,
    TrainingConfig,
    make_gaussian_clusters,
)
from repro.distances.context import DistanceContext
from repro.exceptions import RetrievalError
from repro.retrieval import (
    CostModel,
    PlannedRetriever,
    choose_operating_point,
    refine_schedule,
    run_sweep,
)

K = 3


def assert_bit_identical(lhs, rhs):
    """Full-surface equality: answers, candidates, and the honest charge."""
    assert np.array_equal(lhs.neighbor_indices, rhs.neighbor_indices)
    assert np.array_equal(lhs.neighbor_distances, rhs.neighbor_distances)
    assert np.array_equal(lhs.candidate_indices, rhs.candidate_indices)
    assert (
        lhs.refine_distance_computations == rhs.refine_distance_computations
    )
    assert (
        lhs.embedding_distance_computations
        == rhs.embedding_distance_computations
    )


# --------------------------------------------------------------------- #
# Pure decision layer                                                   #
# --------------------------------------------------------------------- #


class TestRefineSchedule:
    def test_doubles_from_quarter_ceiling(self):
        assert refine_schedule(64, 3) == [16, 32, 64]

    def test_starts_at_k_when_k_dominates(self):
        assert refine_schedule(20, 8) == [8, 16, 20]

    def test_k_at_or_above_ceiling_is_one_step(self):
        assert refine_schedule(5, 5) == [5]
        assert refine_schedule(5, 9) == [5]

    def test_last_entry_is_always_the_ceiling(self):
        for ceiling in (1, 2, 7, 33, 100):
            for k in (1, 3, 10):
                schedule = refine_schedule(ceiling, k)
                assert schedule[-1] == ceiling
                assert schedule == sorted(set(schedule))

    def test_rejects_nonpositive_ceiling(self):
        with pytest.raises(RetrievalError):
            refine_schedule(0, 3)


class TestChooseOperatingPoint:
    def test_uncalibrated_fallback(self):
        p = choose_operating_point(
            k=2,
            n_database=1000,
            embedding_cost=10,
            rank_profile=None,
            target_accuracy=0.9,
            cost_budget=None,
        )
        assert p == 32  # max(8k, 32)
        p = choose_operating_point(
            k=10,
            n_database=1000,
            embedding_cost=10,
            rank_profile=None,
            target_accuracy=0.9,
            cost_budget=None,
        )
        assert p == 80

    def test_cost_budget_caps_p(self):
        p = choose_operating_point(
            k=2,
            n_database=1000,
            embedding_cost=10,
            rank_profile=None,
            target_accuracy=0.9,
            cost_budget=30,
        )
        assert p == 20  # budget minus the embedding

    def test_budget_never_squeezes_below_k(self):
        p = choose_operating_point(
            k=5,
            n_database=1000,
            embedding_cost=8,
            rank_profile=None,
            target_accuracy=0.9,
            cost_budget=10,
        )
        assert p == 5

    def test_tiny_residual_goes_exact(self):
        # Filtering cannot pay for itself: embed + p >= n, so refine all.
        p = choose_operating_point(
            k=2,
            n_database=40,
            embedding_cost=10,
            rank_profile=None,
            target_accuracy=0.9,
            cost_budget=None,
        )
        assert p == 40


class TestCostModel:
    def test_blend_replaces_zero_prior_then_ewma(self):
        model = CostModel(alpha=0.5)
        assert model._blend(0.0, 4.0) == 4.0
        assert model._blend(4.0, 8.0) == 6.0

    def test_observe_batch_fits_per_unit_rates(self):
        model = CostModel()
        model.observe_batch(
            n_queries=2,
            n_rows=200,
            tier="float64",
            embed_seconds=2.0,
            filter_seconds=4.0,
            refine_seconds=3.0,
            refine_evaluations=30,
            refine_pairs=60,
        )
        assert model.embed_seconds == 1.0
        assert model.filter_row_seconds["float64"] == 0.02
        assert model.exact_eval_seconds == 0.1
        assert model.store_hit_rate == 0.5
        assert model.observations == 1

    def test_choose_n_jobs_serial_without_a_pool(self):
        model = CostModel()
        assert model.choose_n_jobs(4, 100, 0) is None
        assert model.choose_n_jobs(4, 100, 1) is None

    def test_choose_n_jobs_needs_misses_to_amortize(self):
        model = CostModel()
        assert model.choose_n_jobs(1, 10, 4) is None  # 10 misses < 8 * 4
        assert model.choose_n_jobs(4, 100, 4) == 4
        model.store_hit_rate = 0.99  # warm store: nothing left to fan out
        assert model.choose_n_jobs(4, 100, 4) is None

    def test_choose_backend_prefers_warm_sharded(self):
        model = CostModel()
        assert model.choose_backend(10, 100, "float64", True, False) == "flat"
        model.store_hit_rate = 0.5
        assert (
            model.choose_backend(10, 100, "float64", True, False) == "sharded"
        )
        assert model.choose_backend(10, 100, "float64", False, False) == "flat"

    def test_choose_backend_remote_only_when_round_trip_wins(self):
        model = CostModel()
        model.exact_eval_seconds = 1e-3
        model.remote_round_trip_seconds = 10.0
        assert (
            model.choose_backend(10, 100, "float64", False, True) == "flat"
        )
        model.remote_round_trip_seconds = 1e-9
        assert (
            model.choose_backend(10, 100, "float64", False, True)
            == "remote_sharded"
        )

    def test_choose_filter_tier_keeps_preference_until_both_fitted(self):
        model = CostModel()
        assert model.choose_filter_tier(["int8", "float64"]) == "int8"
        model.filter_row_seconds = {"int8": 2.0, "float64": 1.0}
        assert model.choose_filter_tier(["int8", "float64"]) == "float64"

    def test_to_dict_snapshot(self):
        snapshot = CostModel().to_dict()
        assert set(snapshot) == {
            "observations",
            "exact_eval_seconds",
            "embed_seconds",
            "filter_row_seconds",
            "store_hit_rate",
            "shard_hit_rates",
            "remote_round_trip_seconds",
            "calibrated",
        }
        assert snapshot["calibrated"] is False

    def test_rejects_bad_alpha(self):
        with pytest.raises(RetrievalError):
            CostModel(alpha=0.0)


# --------------------------------------------------------------------- #
# Fixed-p pass-through                                                  #
# --------------------------------------------------------------------- #


class TestFixedPassThrough:
    def test_explicit_p_is_bit_identical_to_filter_refine(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)[:6]
        planned = PlannedRetriever(l2, gaussian_split.database, trained_qs.model)
        flat = FilterRefineRetriever(
            l2, gaussian_split.database, trained_qs.model
        )
        for lhs, rhs in zip(
            planned.query_many(queries, K, p=12),
            flat.query_many(queries, K, p=12),
        ):
            assert_bit_identical(lhs, rhs)

    def test_off_mode_requires_p(self, l2, gaussian_split, trained_qs):
        planned = PlannedRetriever(l2, gaussian_split.database, trained_qs.model)
        with pytest.raises(RetrievalError, match="adaptive"):
            planned.query(list(gaussian_split.queries)[0], K)

    def test_constructor_validation(self, l2, gaussian_split, trained_qs):
        with pytest.raises(RetrievalError):
            PlannedRetriever(
                l2, gaussian_split.database, trained_qs.model, mode="clever"
            )
        with pytest.raises(RetrievalError):
            PlannedRetriever(
                l2,
                gaussian_split.database,
                trained_qs.model,
                mode="adaptive",
                target_accuracy=1.5,
            )
        with pytest.raises(RetrievalError):
            PlannedRetriever(
                l2,
                gaussian_split.database,
                trained_qs.model,
                mode="adaptive",
                cost_budget=0,
            )


# --------------------------------------------------------------------- #
# Adaptive mode: flat path                                              #
# --------------------------------------------------------------------- #


class TestAdaptiveFlat:
    def test_every_result_matches_the_fixed_run_at_its_chosen_p(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)[:8]
        planner = PlannedRetriever(
            l2, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        results = planner.query_many(queries, K)
        assert len(results) == len(queries)
        for query, result in zip(queries, results):
            assert result.stats["planned"] is True
            chosen = result.stats["planned_p"]
            fixed = FilterRefineRetriever(
                l2, gaussian_split.database, trained_qs.model
            ).query(query, K, p=chosen)
            assert_bit_identical(result, fixed)

    def test_uncalibrated_ceiling_is_the_deterministic_fallback(
        self, l2, gaussian_split, trained_qs
    ):
        planner = PlannedRetriever(
            l2, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        assert planner.choose_p(K) == 32  # max(8k, 32), n = 150
        results = planner.query_many(list(gaussian_split.queries)[:5], K)
        assert all(r.stats["planned_p"] <= 32 for r in results)

    def test_early_exit_charges_only_refined_pairs(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)
        planner = PlannedRetriever(
            l2, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        results = planner.query_many(queries, K)
        exits = [r for r in results if r.stats["early_exit"]]
        assert exits, "no query exited early on clustered data"
        for result in exits:
            assert result.stats["planned_p"] < planner.choose_p(K)
            assert (
                result.refine_distance_computations
                == result.stats["planned_p"]
            )
        assert planner.early_exits == len(exits)
        assert planner.planned_queries == len(queries)

    def test_cost_budget_caps_the_ceiling(self, l2, gaussian_split, trained_qs):
        budget = 30
        planner = PlannedRetriever(
            l2,
            gaussian_split.database,
            trained_qs.model,
            mode="adaptive",
            cost_budget=budget,
        )
        cap = budget - planner.embedding_cost
        results = planner.query_many(list(gaussian_split.queries)[:5], K)
        assert planner.choose_p(K) <= max(cap, K)
        assert all(len(r.candidate_indices) <= max(cap, K) for r in results)

    def test_calibration_fits_profile_and_charges_probes(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)
        planner = PlannedRetriever(
            l2,
            gaussian_split.database,
            trained_qs.model,
            mode="adaptive",
            target_accuracy=0.9,
        )
        record = planner.calibrate(queries[:4], k_max=5)
        n = len(gaussian_split.database)
        assert planner.rank_profile is not None
        assert record["probes"] == 4
        assert record["probe_evaluations"] == 4 * (n + planner.embedding_cost)
        assert record["fit_seconds"] > 0.0
        assert planner.model.calibration is record
        # The calibrated choice is pure: repeated calls agree.
        assert planner.choose_p(K) == planner.choose_p(K)

    def test_explain_is_deterministic_and_consistent_with_serving(
        self, l2, gaussian_split, trained_qs
    ):
        planner = PlannedRetriever(
            l2, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        first = planner.explain(K)
        second = planner.explain(K)
        assert first == second
        assert first["adaptive"] is True
        assert first["p"] == planner.choose_p(K)
        assert first["schedule"] == refine_schedule(first["p"], K)
        assert first["backend"] == "flat"
        fixed = planner.explain(K, p=9)
        assert fixed["adaptive"] is False
        assert fixed["schedule"] == [9]
        result = planner.query(list(gaussian_split.queries)[0], K)
        assert result.stats["p"] == first["p"]

    def test_planner_health_reports_counters(
        self, l2, gaussian_split, trained_qs
    ):
        planner = PlannedRetriever(
            l2, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        health = planner.planner_health()
        assert health["mode"] == "adaptive"
        assert health["calibrated"] is False
        assert health["planned_queries"] == 0
        planner.query_many(list(gaussian_split.queries)[:3], K)
        health = planner.planner_health()
        assert health["planned_queries"] == 3
        assert health["last_decision"]["backend"] == "flat"


# --------------------------------------------------------------------- #
# Adaptive mode: warm store and the sharded path                        #
# --------------------------------------------------------------------- #


def make_context(l2, gaussian_split, register_queries=False):
    objects = list(gaussian_split.database)
    context = DistanceContext(l2, objects)
    if register_queries:
        context.register(list(gaussian_split.queries))
    return context


class TestAdaptiveWarmAndSharded:
    def test_warm_store_reserve_is_free_and_identical(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)[:8]
        context = make_context(l2, gaussian_split)
        context.register(queries)
        planner = PlannedRetriever(
            context, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        cold = planner.query_many(queries, K)
        warm = planner.query_many(queries, K)
        assert sum(r.refine_distance_computations for r in cold) > 0
        assert sum(r.refine_distance_computations for r in warm) == 0
        for a, b in zip(cold, warm):
            assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
            assert np.array_equal(a.neighbor_distances, b.neighbor_distances)
        assert planner.model.store_hit_rate > 0.5

    def test_sharded_choice_is_bit_identical_to_sharded_fixed_run(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)[:6]
        planner = PlannedRetriever(
            make_context(l2, gaussian_split),
            gaussian_split.database,
            trained_qs.model,
            n_shards=3,
            mode="adaptive",
        )
        # Pretend the store is warm so the model routes to the sharded
        # path; the choice may only move *where* the work runs.
        planner.model.store_hit_rate = 0.5
        results = planner.query_many(queries, K)
        assert planner._last_decision["backend"] == "sharded"
        reference = ShardedRetriever(
            make_context(l2, gaussian_split),
            gaussian_split.database,
            trained_qs.model,
            n_shards=3,
        )
        for query, result in zip(queries, results):
            fixed = reference.query(query, K, p=result.stats["planned_p"])
            assert_bit_identical(result, fixed)
        assert planner.model.shard_hit_rates  # per-shard signals observed

    def test_remote_choice_ships_the_batch_and_stays_bit_identical(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)[:5]

        class StubRemote:
            """Remote delegate surface backed by a local sharded run."""

            def __init__(self, retriever):
                self.retriever = retriever
                self.batches = 0

            def query_many(self, objects, k, p):
                self.batches += 1
                return self.retriever.query_many(objects, k, p)

            def health(self):
                return {"degraded": False}

            def cost_signals(self):
                return self.retriever.shard_cost_signals()

        planner = PlannedRetriever(
            l2, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        remote = StubRemote(
            ShardedRetriever(
                make_context(l2, gaussian_split),
                gaussian_split.database,
                trained_qs.model,
                n_shards=2,
            )
        )
        planner.attach_remote(remote)
        # Make the fitted round-trip beat the predicted local cost.
        planner.model.exact_eval_seconds = 1.0
        planner.model.remote_round_trip_seconds = 1e-9
        results = planner.query_many(queries, K)
        assert remote.batches == 1
        assert planner._last_decision["backend"] == "remote_sharded"
        reference = ShardedRetriever(
            make_context(l2, gaussian_split),
            gaussian_split.database,
            trained_qs.model,
            n_shards=2,
        )
        for query, result in zip(queries, results):
            assert result.stats["early_exit"] is False
            fixed = reference.query(query, K, p=result.stats["planned_p"])
            assert_bit_identical(result, fixed)
        assert planner.model.shard_hit_rates  # cost_signals were folded in

    def test_degraded_remote_replans_onto_the_local_path(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)[:4]

        class DeadRemote:
            def query_many(self, objects, k, p):  # pragma: no cover
                raise AssertionError("a degraded remote must not be queried")

            def health(self):
                raise ConnectionError("shard service unreachable")

        planner = PlannedRetriever(
            l2, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        planner.attach_remote(DeadRemote())
        planner.model.remote_round_trip_seconds = 1e-9
        results = planner.query_many(queries, K)
        assert planner._last_decision["backend"] == "flat"
        local = PlannedRetriever(
            l2, gaussian_split.database, trained_qs.model, mode="adaptive"
        )
        for lhs, rhs in zip(results, local.query_many(queries, K)):
            assert_bit_identical(lhs, rhs)


# --------------------------------------------------------------------- #
# Sweep parity                                                          #
# --------------------------------------------------------------------- #


class TestSweepParity:
    def test_run_sweep_matches_fixed_queries_at_every_p(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)[:5]
        ps = [8, 16, 32]
        swept = run_sweep(
            l2, gaussian_split.database, trained_qs.model, queries, K, ps
        )
        assert sorted(swept) == ps
        flat = FilterRefineRetriever(
            l2, gaussian_split.database, trained_qs.model
        )
        for p in ps:
            for query, result in zip(queries, swept[p]):
                assert_bit_identical(result, flat.query(query, K, p=p))

    def test_sweep_at_the_chosen_p_matches_the_planner_bit_for_bit(
        self, l2, gaussian_split, trained_qs
    ):
        queries = list(gaussian_split.queries)[:6]
        planner = PlannedRetriever(
            make_context(l2, gaussian_split),
            gaussian_split.database,
            trained_qs.model,
            mode="adaptive",
        )
        planned = planner.query_many(queries, K)
        chosen = sorted({r.stats["planned_p"] for r in planned})
        swept = run_sweep(
            make_context(l2, gaussian_split),
            gaussian_split.database,
            trained_qs.model,
            queries,
            K,
            chosen,
        )
        for i, result in enumerate(planned):
            assert_bit_identical(result, swept[result.stats["planned_p"]][i])

    def test_run_sweep_validates_ps(self, l2, gaussian_split, trained_qs):
        with pytest.raises(RetrievalError):
            run_sweep(
                l2,
                gaussian_split.database,
                trained_qs.model,
                list(gaussian_split.queries)[:2],
                K,
                [],
            )


# --------------------------------------------------------------------- #
# Index facade                                                          #
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def planner_split():
    dataset = make_gaussian_clusters(n_objects=90, n_clusters=5, n_dims=5, seed=31)
    return RetrievalSplit.from_dataset(dataset, n_queries=10, seed=32)


@pytest.fixture(scope="module")
def planned_index(planner_split):
    config = IndexConfig(
        training=TrainingConfig(
            n_candidates=20,
            n_training_objects=25,
            n_triples=300,
            n_rounds=6,
            classifiers_per_round=12,
            intervals_per_candidate=4,
            kmax=5,
            seed=3,
        ),
        planner="adaptive",
        planner_target_accuracy=0.9,
        backend="planned",
    )
    index = EmbeddingIndex.build(
        L2Distance(),
        planner_split.database,
        config,
        queries=list(planner_split.queries),
    )
    yield index
    index.close()


class TestIndexFacade:
    def test_config_roundtrip_preserves_planner_fields(self):
        config = IndexConfig(
            training=TrainingConfig(),
            planner="adaptive",
            planner_target_accuracy=0.85,
            planner_cost_budget=64,
        )
        restored = IndexConfig.from_dict(config.to_dict())
        assert restored.planner == "adaptive"
        assert restored.planner_target_accuracy == 0.85
        assert restored.planner_cost_budget == 64

    def test_config_rejects_bad_planner_fields(self):
        with pytest.raises(Exception):
            IndexConfig(training=TrainingConfig(), planner="sometimes")
        with pytest.raises(Exception):
            IndexConfig(training=TrainingConfig(), planner_target_accuracy=0.0)
        with pytest.raises(Exception):
            IndexConfig(training=TrainingConfig(), planner_cost_budget=0)

    def test_pre_planner_payload_defaults_off(self):
        config = IndexConfig(training=TrainingConfig())
        payload = config.to_dict()
        for key in ("planner", "planner_target_accuracy", "planner_cost_budget"):
            payload.pop(key)
        restored = IndexConfig.from_dict(payload)
        assert restored.planner == "off"

    def test_adaptive_serving_matches_fixed_p_neighbors(
        self, planned_index, planner_split
    ):
        queries = list(planner_split.queries)
        calibration = planned_index.calibrate_planner(queries[:3])
        assert calibration["probes"] == 3
        results = planned_index.query_many(queries, k=K)
        for query, result in zip(queries, results):
            chosen = result.stats["planned_p"]
            fixed = planned_index.query(query, k=K, p=chosen)
            assert np.array_equal(
                result.neighbor_indices, fixed.neighbor_indices
            )
            assert np.array_equal(
                result.neighbor_distances, fixed.neighbor_distances
            )

    def test_explain_and_health_surface(self, planned_index):
        plan = planned_index.explain(k=K)
        assert plan["adaptive"] is True
        assert plan["p"] >= K
        health = planned_index.health()
        assert health["planner"]["mode"] == "adaptive"
        assert health["planner"]["planned_queries"] > 0

    def test_submit_resolves_p_through_the_planner(
        self, planned_index, planner_split
    ):
        query = list(planner_split.queries)[0]
        expected = planned_index._backend.choose_p(K)
        ticket = planned_index.submit(query, k=K, p=None)
        result = ticket.result()
        assert len(result.candidate_indices) <= expected
        reference = planned_index.query(query, k=K, p=expected)
        assert np.array_equal(
            result.neighbor_indices, reference.neighbor_indices
        )

    def test_enable_planner_switches_backend(self, planner_split):
        config = IndexConfig(
            training=TrainingConfig(
                n_candidates=20,
                n_training_objects=25,
                n_triples=300,
                n_rounds=6,
                classifiers_per_round=12,
                intervals_per_candidate=4,
                kmax=5,
                seed=3,
            ),
        )
        with EmbeddingIndex.build(
            L2Distance(), planner_split.database, config
        ) as index:
            assert index.backend != "planned"
            index.enable_planner(target_accuracy=0.9)
            assert index.backend == "planned"
            assert index.config.planner == "adaptive"
            result = index.query(list(planner_split.queries)[0], k=K)
            assert result.stats["planned"] is True
