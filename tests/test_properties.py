"""Property-based tests (hypothesis) for the core invariants of the library.

These tests check structural properties that must hold for *any* input, not
just the hand-picked examples of the unit tests: metric axioms of the vector
distances, the Lipschitz property of reference embeddings, conservation laws
of the boosting weights, the equivalence of the classifier and embedding
views of a model (Proposition 1), and the consistency of the evaluation
protocol.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.adaboost import initialize_weights, update_weights
from repro.core.model import ClassifierTerm, CoordinateSpec, QuerySensitiveModel
from repro.core.splitters import GLOBAL_INTERVAL, Interval
from repro.core.weak_classifiers import classifier_margins, optimize_alpha
from repro.distances import (
    ConstrainedDTW,
    EditDistance,
    JensenShannonDistance,
    L1Distance,
    L2Distance,
)
from repro.embeddings import PivotEmbedding, ReferenceEmbedding

# --------------------------------------------------------------------------- #
# Strategies                                                                  #
# --------------------------------------------------------------------------- #

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def vectors(dim: int = 4):
    return arrays(dtype=float, shape=dim, elements=finite_floats)


small_series = arrays(
    dtype=float,
    shape=st.tuples(st.integers(4, 12), st.just(1)),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
)

probability_vectors = arrays(
    dtype=float, shape=5, elements=st.floats(min_value=0.01, max_value=1.0)
)

dna_strings = st.text(alphabet="ACGT", min_size=0, max_size=12)


# --------------------------------------------------------------------------- #
# Distance axioms                                                             #
# --------------------------------------------------------------------------- #


class TestMetricAxioms:
    @given(x=vectors(), y=vectors())
    def test_l1_symmetry_and_nonnegativity(self, x, y):
        d = L1Distance()
        assert d(x, y) >= 0
        assert d(x, y) == pytest.approx(d(y, x))
        assert d(x, x) == 0

    @given(x=vectors(), y=vectors(), z=vectors())
    def test_l2_triangle_inequality(self, x, y, z):
        d = L2Distance()
        assert d(x, z) <= d(x, y) + d(y, z) + 1e-9

    @given(a=dna_strings, b=dna_strings, c=dna_strings)
    @settings(max_examples=40, deadline=None)
    def test_edit_distance_triangle_inequality(self, a, b, c):
        d = EditDistance()
        assert d(a, c) <= d(a, b) + d(b, c)

    @given(a=dna_strings, b=dna_strings)
    @settings(max_examples=40, deadline=None)
    def test_edit_distance_bounded_by_longer_string(self, a, b):
        assert EditDistance()(a, b) <= max(len(a), len(b))

    @given(p=probability_vectors, q=probability_vectors, r=probability_vectors)
    @settings(max_examples=40, deadline=None)
    def test_jensen_shannon_triangle_inequality(self, p, q, r):
        d = JensenShannonDistance()
        assert d(p, r) <= d(p, q) + d(q, r) + 1e-9

    @given(x=small_series, y=small_series)
    @settings(max_examples=30, deadline=None)
    def test_dtw_symmetry_and_identity(self, x, y):
        d = ConstrainedDTW(band_fraction=0.3)
        assert d(x, x) == pytest.approx(0.0, abs=1e-9)
        assert d(x, y) == pytest.approx(d(y, x), rel=1e-9, abs=1e-9)
        assert d(x, y) >= 0


# --------------------------------------------------------------------------- #
# Embedding properties                                                        #
# --------------------------------------------------------------------------- #


class TestEmbeddingProperties:
    @given(x=vectors(3), y=vectors(3), r=vectors(3))
    def test_reference_embedding_is_contractive_for_metrics(self, x, y, r):
        """|F^r(x) - F^r(y)| <= D(x, y) — the Lipschitz property."""
        d = L2Distance()
        emb = ReferenceEmbedding(d, r)
        assert abs(emb.value(x) - emb.value(y)) <= d(x, y) + 1e-9

    @given(x=vectors(3), p1=vectors(3), p2=vectors(3))
    def test_pivot_embedding_projection_bounded_in_euclidean_space(self, x, p1, p2):
        """In Euclidean space the pivot projection differs from each endpoint
        distance by at most the interpivot distance (a coarse but universal bound)."""
        d = L2Distance()
        assume(d(p1, p2) > 1e-3)
        emb = PivotEmbedding(d, p1, p2)
        value = emb.value(x)
        # The exact Euclidean projection lies within [−|x−p1|, |x−p1|+|p1p2|].
        assert value <= d(x, p1) + 1e-6
        assert value >= -d(x, p2) - 1e-6

    @given(q=finite_floats, a=finite_floats, b=finite_floats)
    def test_1d_classifier_sign_matches_proximity(self, q, a, b):
        """For a 1D embedding, F~(q,a,b) > 0 iff |q-a| < |q-b| (up to ties)."""
        margin = classifier_margins(np.array([q]), np.array([a]), np.array([b]))[0]
        if abs(q - a) < abs(q - b):
            assert margin > 0
        elif abs(q - a) > abs(q - b):
            assert margin < 0
        else:
            assert margin == pytest.approx(0.0)


# --------------------------------------------------------------------------- #
# Splitters and boosting                                                      #
# --------------------------------------------------------------------------- #


class TestSplitterProperties:
    @given(
        low=finite_floats,
        high=finite_floats,
        values=arrays(dtype=float, shape=10, elements=finite_floats),
    )
    def test_interval_membership_consistent(self, low, high, values):
        assume(low <= high)
        interval = Interval(low=low, high=high)
        mask = interval.contains(values)
        for value, inside in zip(values, mask):
            assert inside == (low <= value <= high)

    @given(values=arrays(dtype=float, shape=8, elements=finite_floats))
    def test_global_interval_accepts_everything(self, values):
        assert np.all(GLOBAL_INTERVAL.contains(values))


class TestBoostingProperties:
    @given(
        margins=arrays(dtype=float, shape=20, elements=st.floats(-1, 1, allow_nan=False)),
        label_bits=arrays(dtype=bool, shape=20),
        alpha=st.floats(min_value=0.01, max_value=3.0),
    )
    def test_weight_update_preserves_normalisation(self, margins, label_bits, alpha):
        labels = np.where(label_bits, 1.0, -1.0)
        weights = initialize_weights(20)
        updated = update_weights(weights, margins, labels, alpha)
        assert updated.sum() == pytest.approx(1.0)
        assert np.all(updated >= 0)

    @given(
        margins=arrays(dtype=float, shape=30, elements=st.floats(-1, 1, allow_nan=False)),
        label_bits=arrays(dtype=bool, shape=30),
    )
    @settings(max_examples=50, deadline=None)
    def test_optimal_alpha_never_increases_z_above_one(self, margins, label_bits):
        """The selected (alpha, Z) always satisfies Z <= 1: boosting never
        accepts a classifier that would make training error worse."""
        labels = np.where(label_bits, 1.0, -1.0)
        weights = initialize_weights(30)
        for mode in ("confidence", "discrete"):
            alpha, z = optimize_alpha(margins, labels, weights, mode=mode)
            assert z <= 1.0 + 1e-9
            assert alpha >= 0.0


# --------------------------------------------------------------------------- #
# Proposition 1: classifier view == embedding + D_out view                    #
# --------------------------------------------------------------------------- #


@st.composite
def random_models(draw):
    """Random small query-sensitive models over R^2 reference embeddings."""
    l2 = L2Distance()
    n_coords = draw(st.integers(1, 3))
    references = [
        np.array([draw(st.floats(-5, 5, allow_nan=False)),
                  draw(st.floats(-5, 5, allow_nan=False))])
        for _ in range(n_coords)
    ]
    coordinates = [
        ReferenceEmbedding(l2, r, reference_id=i) for i, r in enumerate(references)
    ]
    specs = [CoordinateSpec("reference", (i,)) for i in range(n_coords)]
    n_terms = draw(st.integers(1, 4))
    terms = []
    for _ in range(n_terms):
        coord = draw(st.integers(0, n_coords - 1))
        if draw(st.booleans()):
            interval = GLOBAL_INTERVAL
        else:
            low = draw(st.floats(0, 5, allow_nan=False))
            width = draw(st.floats(0.1, 5, allow_nan=False))
            interval = Interval(low=low, high=low + width)
        alpha = draw(st.floats(0.05, 2.0, allow_nan=False))
        terms.append(ClassifierTerm(coordinate=coord, interval=interval, alpha=alpha))
    return QuerySensitiveModel(coordinates, specs, terms, query_sensitive=True)


class TestProposition1Property:
    @given(
        model=random_models(),
        q=vectors(2),
        a=vectors(2),
        b=vectors(2),
    )
    @settings(max_examples=60, deadline=None)
    def test_classifier_equals_distance_difference(self, model, q, a, b):
        """H(q,a,b) computed from the terms equals D_out(q,b) - D_out(q,a),
        whenever the query activates at least one splitter (the documented
        fallback case is excluded)."""
        q_vec, a_vec, b_vec = model.embed(q), model.embed(a), model.embed(b)
        active_terms = [
            t for t in model.terms if t.interval.contains(q_vec[t.coordinate])
        ]
        assume(active_terms)
        explicit = sum(
            t.alpha
            * (
                abs(q_vec[t.coordinate] - b_vec[t.coordinate])
                - abs(q_vec[t.coordinate] - a_vec[t.coordinate])
            )
            for t in active_terms
        )
        assert model.classify_vectors(q_vec, a_vec, b_vec) == pytest.approx(
            explicit, rel=1e-9, abs=1e-9
        )

    @given(model=random_models(), q=vectors(2), x=vectors(2))
    @settings(max_examples=60, deadline=None)
    def test_dout_nonnegative_and_zero_on_self(self, model, q, x):
        q_vec, x_vec = model.embed(q), model.embed(x)
        assert model.distance(q_vec, x_vec) >= 0.0
        assert model.distance(q_vec, q_vec) == pytest.approx(0.0)

    @given(model=random_models(), q=vectors(2))
    @settings(max_examples=40, deadline=None)
    def test_weights_nonnegative(self, model, q):
        weights = model.weights(model.embed(q))
        assert np.all(weights >= 0)
        assert weights.shape == (model.dim,)


# --------------------------------------------------------------------------- #
# Evaluation protocol                                                         #
# --------------------------------------------------------------------------- #


class TestEvaluationProperties:
    @given(
        ranks=arrays(
            dtype=int,
            shape=st.tuples(st.integers(2, 12), st.integers(1, 5)),
            elements=st.integers(1, 50),
        ),
        accuracy=st.floats(0.1, 1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_cost_for_accuracy_meets_target(self, ranks, accuracy):
        """The chosen p really does give at least the requested accuracy."""
        from repro.retrieval.evaluation import (
            FilterRankResult,
            cost_for_accuracy,
            success_rate,
        )

        result = FilterRankResult(rank_matrix=ranks, embedding_cost=3, dim=4)
        k = ranks.shape[1]
        point = cost_for_accuracy(result, k, accuracy, database_size=1000)
        assert success_rate(result, k, point.p) >= accuracy - 1e-12
        assert point.cost == min(3 + point.p, 1000)
