"""Tests for the quantized filter tier (:mod:`repro.retrieval.quantized`).

The tier's contract is strict: scanning the float32 / int8 copy of the
embedded database must leave every observable output — candidates, tie
order, neighbor distances, per-query exact-distance counts — **bit
identical** to the float64 scan, with the quantization error absorbed by
an honestly-charged widened ``p'``.  These tests pin that contract at
every level: the quantizer itself, the cut function (including boundary
ties), both retrievers, and the ``EmbeddingIndex`` facade with its
artifact round trip and ``health()`` metadata.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import (
    EmbeddingIndex,
    IndexConfig,
    L2Distance,
    RetrievalSplit,
    TrainingConfig,
    make_gaussian_clusters,
)
from repro.embeddings.base import Embedding
from repro.exceptions import ArtifactError, ConfigurationError, RetrievalError
from repro.index import artifacts
from repro.retrieval import FilterRefineRetriever, ShardedRetriever
from repro.retrieval.engine import filter_vector_distances, stable_smallest
from repro.retrieval.quantized import (
    QUANTIZED_DTYPES,
    QuantizedVectors,
    quantized_filter_cut,
)


class VectorEmbedding(Embedding):
    """Identity embedding over vector objects (filter = plain L1)."""

    def __init__(self, dim: int) -> None:
        self._dim = int(dim)

    @property
    def dim(self) -> int:
        return self._dim

    @property
    def cost(self) -> int:
        return 0

    def embed(self, obj) -> np.ndarray:
        return np.asarray(obj, dtype=float)

    def embed_many(self, objects) -> np.ndarray:
        return np.asarray(list(objects), dtype=float)


# --------------------------------------------------------------------------- #
# QuantizedVectors                                                            #
# --------------------------------------------------------------------------- #


class TestQuantizedVectors:
    @pytest.mark.parametrize("dtype", QUANTIZED_DTYPES)
    def test_dim_error_is_the_measured_maximum(self, dtype, rng):
        vectors = rng.normal(size=(64, 5)) * rng.uniform(0.1, 50.0, size=5)
        quantized = QuantizedVectors.quantize(vectors, dtype)
        if dtype == "int8":
            dequantized = (
                quantized.codes.astype(np.float64) * quantized.scale[None, :]
                + quantized.offset[None, :]
            )
        else:
            dequantized = quantized.codes.astype(np.float64)
        errors = np.abs(vectors - dequantized)
        np.testing.assert_array_equal(errors.max(axis=0), quantized.dim_error)

    def test_float32_is_a_downcast(self, rng):
        vectors = rng.normal(size=(10, 3))
        quantized = QuantizedVectors.quantize(vectors, "float32")
        assert quantized.codes.dtype == np.float32
        np.testing.assert_array_equal(
            quantized.codes, vectors.astype(np.float32)
        )
        assert quantized.nbytes == vectors.nbytes // 2

    def test_int8_constant_dimension_quantizes_exactly(self):
        vectors = np.column_stack(
            [np.full(8, 3.25), np.linspace(-2.0, 2.0, 8)]
        )
        quantized = QuantizedVectors.quantize(vectors, "int8")
        assert quantized.codes.dtype == np.int8
        assert quantized.dim_error[0] == 0.0
        assert quantized.nbytes == vectors.nbytes // 8

    def test_error_bound_weights(self, rng):
        quantized = QuantizedVectors.quantize(rng.normal(size=(20, 4)), "int8")
        weights = np.array([1.0, -2.0, 0.0, 0.5])
        expected = float(np.abs(weights).dot(quantized.dim_error))
        assert quantized.error_bound(weights) == expected
        assert quantized.error_bound(None) == float(quantized.dim_error.sum())

    def test_approx_distances_within_bound(self, rng):
        vectors = rng.normal(size=(300, 6))
        embedder = VectorEmbedding(6)
        query = rng.normal(size=6)
        for dtype in QUANTIZED_DTYPES:
            quantized = QuantizedVectors.quantize(vectors, dtype)
            approx = quantized.approx_distances(query, None)
            exact = filter_vector_distances(embedder, query, vectors)
            bound = quantized.error_bound(None)
            assert np.abs(approx - exact).max() <= bound * (1 + 1e-9) + 1e-12

    def test_payload_round_trip(self, tmp_path, rng):
        quantized = QuantizedVectors.quantize(rng.normal(size=(12, 3)), "int8")
        path = tmp_path / "filter.npz"
        np.savez(path, **quantized.to_payload())
        with np.load(path) as data:
            restored = QuantizedVectors.from_payload(data)
        assert restored.dtype == "int8"
        np.testing.assert_array_equal(restored.codes, quantized.codes)
        np.testing.assert_array_equal(restored.scale, quantized.scale)
        np.testing.assert_array_equal(restored.offset, quantized.offset)
        np.testing.assert_array_equal(restored.dim_error, quantized.dim_error)

    def test_slice_shares_codes_and_bounds(self, rng):
        quantized = QuantizedVectors.quantize(rng.normal(size=(30, 2)), "float32")
        part = quantized.slice(10, 20)
        assert len(part) == 10
        assert part.codes.base is quantized.codes
        assert part.dim_error is not None
        np.testing.assert_array_equal(part.dim_error, quantized.dim_error)

    def test_invalid_inputs_are_rejected(self, rng):
        with pytest.raises(RetrievalError, match="unsupported quantized dtype"):
            QuantizedVectors.quantize(rng.normal(size=(4, 2)), "float16")
        with pytest.raises(RetrievalError, match="2-D"):
            QuantizedVectors.quantize(rng.normal(size=4), "float32")
        with pytest.raises(RetrievalError, match="invalid quantized-vectors"):
            QuantizedVectors.from_payload({"codes": np.zeros((2, 2))})


# --------------------------------------------------------------------------- #
# The cut                                                                     #
# --------------------------------------------------------------------------- #


class TestQuantizedFilterCut:
    @pytest.mark.parametrize("dtype", QUANTIZED_DTYPES)
    def test_bit_identical_to_exact_cut(self, dtype, rng):
        vectors = rng.normal(size=(400, 7))
        embedder = VectorEmbedding(7)
        quantized = QuantizedVectors.quantize(vectors, dtype)
        for seed in range(5):
            query = rng.normal(size=7)
            for p in (1, 17, 50):
                exact_full = filter_vector_distances(embedder, query, vectors)
                want = stable_smallest(exact_full, p)
                got, values, widened = quantized_filter_cut(
                    quantized, embedder, query, vectors, p
                )
                np.testing.assert_array_equal(got, want)
                np.testing.assert_array_equal(values, exact_full[want])
                assert widened >= p

    @pytest.mark.parametrize("dtype", QUANTIZED_DTYPES)
    def test_boundary_ties_resolve_identically(self, dtype):
        # Duplicate rows force exact filter-distance ties that straddle the
        # cut; stable selection must keep the lowest database indices.
        base = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.5], [0.3, 0.7]])
        vectors = np.tile(base, (10, 1))
        embedder = VectorEmbedding(2)
        quantized = QuantizedVectors.quantize(vectors, dtype)
        query = np.array([0.1, 0.2])
        for p in (3, 7, 11, 20):
            exact_full = filter_vector_distances(embedder, query, vectors)
            want = stable_smallest(exact_full, p)
            got, _values, _w = quantized_filter_cut(
                quantized, embedder, query, vectors, p
            )
            np.testing.assert_array_equal(got, want)

    def test_degenerate_p_values(self, rng):
        vectors = rng.normal(size=(20, 3))
        embedder = VectorEmbedding(3)
        quantized = QuantizedVectors.quantize(vectors, "float32")
        query = rng.normal(size=3)
        exact_full = filter_vector_distances(embedder, query, vectors)
        # p >= n: a full exact scan, charged as n.
        got, values, widened = quantized_filter_cut(
            quantized, embedder, query, vectors, 50
        )
        np.testing.assert_array_equal(got, stable_smallest(exact_full, None))
        assert widened == 20
        # p at the database size exactly.
        got, _values, widened = quantized_filter_cut(
            quantized, embedder, query, vectors, 20
        )
        assert widened == 20 and got.shape == (20,)

    def test_row_count_mismatch_is_rejected(self, rng):
        vectors = rng.normal(size=(10, 2))
        quantized = QuantizedVectors.quantize(vectors, "float32")
        with pytest.raises(RetrievalError, match="same database"):
            quantized_filter_cut(
                quantized, VectorEmbedding(2), np.zeros(2), vectors[:5], 3
            )


# --------------------------------------------------------------------------- #
# Retrievers                                                                  #
# --------------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def vector_world():
    rng = np.random.default_rng(7)
    dataset = make_gaussian_clusters(n_objects=300, n_clusters=6, n_dims=8, seed=3)
    embedder = VectorEmbedding(8)
    queries = [
        dataset[i] + rng.normal(0, 0.05, size=dataset[i].shape) for i in range(15)
    ]
    return dataset, embedder, queries


def assert_results_identical(lhs, rhs):
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        assert np.array_equal(a.neighbor_indices, b.neighbor_indices)
        assert np.array_equal(a.neighbor_distances, b.neighbor_distances)
        assert np.array_equal(a.candidate_indices, b.candidate_indices)
        assert a.refine_distance_computations == b.refine_distance_computations
        assert a.embedding_distance_computations == b.embedding_distance_computations


class TestRetrieversBitIdentical:
    @pytest.mark.parametrize("dtype", QUANTIZED_DTYPES)
    def test_filter_refine(self, dtype, vector_world):
        dataset, embedder, queries = vector_world
        base = FilterRefineRetriever(L2Distance(), dataset, embedder)
        quantized = QuantizedVectors.quantize(base.database_vectors, dtype)
        quant = FilterRefineRetriever(
            L2Distance(),
            dataset,
            embedder,
            database_vectors=base.database_vectors,
            quantized=quantized,
        )
        want = base.query_many(queries, k=5, p=25)
        got = quant.query_many(queries, k=5, p=25)
        assert_results_identical(want, got)
        assert quant.filter_widened_queries == len(queries)
        assert quant.filter_widened_total >= 25 * len(queries)
        assert base.filter_widened_queries == 0
        assert quant.quantized is quantized

    @pytest.mark.parametrize("dtype", QUANTIZED_DTYPES)
    def test_sharded(self, dtype, vector_world):
        dataset, embedder, queries = vector_world
        base = ShardedRetriever(L2Distance(), dataset, embedder, n_shards=3)
        quantized = QuantizedVectors.quantize(base.database_vectors, dtype)
        quant = ShardedRetriever(
            L2Distance(),
            dataset,
            embedder,
            n_shards=3,
            database_vectors=base.database_vectors,
            quantized=quantized,
        )
        want = base.query_many(queries, k=4, p=20)
        got = quant.query_many(queries, k=4, p=20)
        assert_results_identical(want, got)
        assert quant.filter_widened_queries == len(queries)
        # Widening is charged per shard, so the total is at least the
        # merged candidate budget (min(p, shard) summed across shards).
        assert quant.filter_widened_total >= 20 * len(queries)
        assert quant.quantized is quantized
        assert base.quantized is None


# --------------------------------------------------------------------------- #
# EmbeddingIndex facade + artifacts                                           #
# --------------------------------------------------------------------------- #


def _tiny_training(seed: int = 2) -> TrainingConfig:
    return TrainingConfig(
        n_candidates=20,
        n_training_objects=20,
        n_triples=300,
        n_rounds=6,
        classifiers_per_round=10,
        intervals_per_candidate=4,
        kmax=5,
        seed=seed,
    )


@pytest.fixture(scope="module")
def index_world():
    dataset = make_gaussian_clusters(n_objects=120, n_clusters=5, n_dims=5, seed=11)
    split = RetrievalSplit.from_dataset(dataset, n_queries=10, seed=12)
    queries = list(split.queries)
    base = EmbeddingIndex.build(
        L2Distance(),
        split.database,
        IndexConfig(training=_tiny_training()),
        queries=queries,
    )
    baseline = base.query_many(queries, k=3, p=12)
    # A second pass over the same queries hits the warm DistanceStore and
    # charges zero refine evaluations; stream comparisons need this
    # cache-warm baseline, not the cold one.
    streamed = [None] * len(queries)
    for position, result in base.stream(queries, k=3, p=12, order="submission"):
        streamed[position] = result
    yield split, queries, baseline, streamed
    base.close()


class TestIndexConfig:
    def test_rejects_unknown_filter_dtype(self):
        with pytest.raises(ConfigurationError, match="filter_dtype"):
            IndexConfig(filter_dtype="float16")

    def test_round_trips_filter_dtype(self):
        config = IndexConfig(filter_dtype="int8")
        restored = IndexConfig.from_dict(config.to_dict())
        assert restored.filter_dtype == "int8"

    def test_legacy_payload_defaults_to_float64(self):
        payload = IndexConfig().to_dict()
        del payload["filter_dtype"]
        assert IndexConfig.from_dict(payload).filter_dtype == "float64"


class TestIndexQuantizedServing:
    @pytest.mark.parametrize("dtype", QUANTIZED_DTYPES)
    def test_query_and_stream_bit_identical(self, dtype, index_world):
        split, queries, baseline, baseline_streamed = index_world
        with EmbeddingIndex.build(
            L2Distance(),
            split.database,
            IndexConfig(training=_tiny_training(), filter_dtype=dtype),
            queries=queries,
        ) as index:
            assert index.quantized is not None
            assert index.quantized.dtype == dtype
            assert_results_identical(
                baseline, index.query_many(queries, k=3, p=12)
            )
            streamed = [None] * len(queries)
            for position, result in index.stream(
                queries, k=3, p=12, order="submission"
            ):
                streamed[position] = result
            assert_results_identical(baseline_streamed, streamed)

            health = index.health()["quantization"]
            assert health["dtype"] == dtype
            assert health["nbytes"] == index.quantized.nbytes
            assert health["widened_queries"] >= len(queries)
            assert health["widened_total"] >= 12 * health["widened_queries"]

            # The sharded backend reuses the same quantized table; by now
            # the store is warm, so compare against the warm baseline.
            index.set_backend("sharded")
            assert_results_identical(
                baseline_streamed, index.query_many(queries, k=3, p=12)
            )

    def test_float64_reports_no_quantization(self, index_world):
        split, queries, _baseline, _streamed = index_world
        with EmbeddingIndex.build(
            L2Distance(),
            split.database,
            IndexConfig(training=_tiny_training()),
            queries=queries,
        ) as index:
            assert index.quantized is None
            assert index.health()["quantization"] is None


class TestQuantizedArtifacts:
    @pytest.mark.parametrize("dtype", QUANTIZED_DTYPES)
    def test_save_open_round_trip(self, dtype, index_world, tmp_path):
        split, queries, baseline, _streamed = index_world
        directory = tmp_path / f"artifact-{dtype}"
        with EmbeddingIndex.build(
            L2Distance(),
            split.database,
            IndexConfig(training=_tiny_training(), filter_dtype=dtype),
            queries=queries,
        ) as index:
            index.save(directory)
            saved_codes = index.quantized.codes.copy()

        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["filter"]["dtype"] == dtype
        assert manifest["filter"]["nbytes"] > 0
        assert (directory / "filter.npz").exists()

        with EmbeddingIndex.open(directory, split.database) as reopened:
            assert reopened.quantized.dtype == dtype
            np.testing.assert_array_equal(reopened.quantized.codes, saved_codes)
            assert_results_identical(
                baseline, reopened.query_many(queries, k=3, p=12)
            )
            assert reopened.health()["quantization"]["dtype"] == dtype

    def test_float64_artifact_has_no_filter_file(self, index_world, tmp_path):
        split, queries, _baseline, _streamed = index_world
        directory = tmp_path / "artifact-plain"
        with EmbeddingIndex.build(
            L2Distance(),
            split.database,
            IndexConfig(training=_tiny_training()),
            queries=queries,
        ) as index:
            index.save(directory)
        manifest = json.loads((directory / "manifest.json").read_text())
        assert manifest["filter"] is None
        assert not (directory / "filter.npz").exists()

    def test_missing_filter_file_refuses_to_open(self, index_world, tmp_path):
        split, queries, _baseline, _streamed = index_world
        directory = tmp_path / "artifact-missing"
        with EmbeddingIndex.build(
            L2Distance(),
            split.database,
            IndexConfig(training=_tiny_training(), filter_dtype="float32"),
            queries=queries,
        ) as index:
            index.save(directory)
        (directory / "filter.npz").unlink()
        with pytest.raises(ArtifactError, match="quantized filter"):
            EmbeddingIndex.open(directory, split.database)

    def test_mismatched_filter_dtype_refuses_to_open(self, index_world, tmp_path):
        split, queries, _baseline, _streamed = index_world
        directory = tmp_path / "artifact-mismatch"
        with EmbeddingIndex.build(
            L2Distance(),
            split.database,
            IndexConfig(training=_tiny_training(), filter_dtype="float32"),
            queries=queries,
        ) as index:
            index.save(directory)
            wrong = QuantizedVectors.quantize(index.database_vectors, "int8")
        artifacts.write_filter_payload(directory, wrong.to_payload())
        with pytest.raises(ArtifactError, match="promises"):
            EmbeddingIndex.open(directory, split.database)
