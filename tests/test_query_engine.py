"""The staged QueryEngine: stage composition, delegation, store-aware routing.

The heavy bit-identity oracles for the engine live in the existing
retrieval suites (every retriever now runs through it); this file covers
the engine-specific surface: stage composition, the retrievers exposing
one shared stage set, the store-aware per-shard refine accounting, and the
DynamicDatabase tie-break fix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BruteForceRetriever,
    DynamicDatabase,
    FilterRefineRetriever,
    L2Distance,
    ShardedRetriever,
)
from repro.datasets.base import Dataset
from repro.distances.context import DistanceContext
from repro.exceptions import RetrievalError
from repro.retrieval.engine import (
    EmbedStage,
    FilterStage,
    MergeStage,
    QueryEngine,
    RefineStage,
    ScanStage,
    ShardedFilterStage,
)


class TestEngineComposition:
    def test_retrievers_expose_the_shared_stages(self, gaussian_split, l2, trained_qs):
        model = trained_qs.model
        flat = FilterRefineRetriever(l2, gaussian_split.database, model)
        sharded = ShardedRetriever(l2, gaussian_split.database, model, n_shards=3)
        brute = BruteForceRetriever(l2, gaussian_split.database)

        assert isinstance(flat.engine, QueryEngine)
        assert isinstance(flat.engine.embed, EmbedStage)
        assert isinstance(flat.engine.filter, FilterStage)
        assert isinstance(flat.engine.refine, RefineStage)
        assert isinstance(flat.engine.merge, MergeStage)
        assert isinstance(sharded.engine.filter, ShardedFilterStage)
        assert isinstance(brute.engine.filter, ScanStage)
        assert brute.engine.embed is None and brute.engine.merge is None
        # Stage list preserves run order (embed first, merge last).
        assert flat.engine.stages[0] is flat.engine.embed
        assert flat.engine.stages[-1] is flat.engine.merge

    def test_engine_query_equals_retriever_query(self, gaussian_split, l2, trained_qs):
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        query = gaussian_split.queries[0]
        via_engine = retriever.engine.query(query, k=3, p=12)
        via_retriever = retriever.query(query, k=3, p=12)
        assert np.array_equal(
            via_engine.neighbor_indices, via_retriever.neighbor_indices
        )
        assert np.array_equal(
            via_engine.neighbor_distances, via_retriever.neighbor_distances
        )

    def test_plan_accumulates_stage_outputs(self, gaussian_split, l2, trained_qs):
        retriever = ShardedRetriever(
            l2, gaussian_split.database, trained_qs.model, n_shards=4
        )
        engine = retriever.engine
        plan = engine.make_plan(list(gaussian_split.queries)[:3], k=2, p=9)
        plan = engine.run(plan)
        assert plan.query_vectors.shape == (3, trained_qs.model.dim)
        assert all(c.shape == (9,) for c in plan.candidate_lists)
        assert plan.shard_work is not None and len(plan.shard_work) == 3
        assert all(e.shape == (9,) for e in plan.exact_lists)
        assert len(plan.results) == 3

    def test_prepare_runs_only_parent_stages(self, gaussian_split, l2, trained_qs):
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        engine = retriever.engine
        before = retriever.refine_distance_evaluations
        plan = engine.prepare(engine.make_plan([gaussian_split.queries[0]], 2, 8, single=True))
        assert plan.candidate_lists[0].shape == (8,)
        assert plan.exact_lists == []
        # prepare never refines: no exact evaluations charged to the stage.
        assert retriever.refine_distance_evaluations == before

    def test_empty_batch_still_validates_params(self, gaussian_split, l2, trained_qs):
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        with pytest.raises(RetrievalError):
            retriever.query_many([], k=0, p=5)
        assert retriever.query_many([], k=2, p=5) == []


class TestStoreAwareShardedRefine:
    def _context_retriever(self, gaussian_split, trained_qs, n_shards=3):
        context = DistanceContext(
            L2Distance(),
            list(gaussian_split.database) + list(gaussian_split.queries),
        )
        retriever = ShardedRetriever(
            context, gaussian_split.database, trained_qs.model, n_shards=n_shards
        )
        return context, retriever

    def test_shard_evaluations_accumulate(self, gaussian_split, trained_qs):
        _context, retriever = self._context_retriever(gaussian_split, trained_qs)
        results = retriever.query_many(list(gaussian_split.queries)[:5], k=3, p=12)
        per_shard = retriever.shard_refine_evaluations
        assert per_shard.shape == (retriever.n_shards,)
        assert per_shard.sum() == sum(
            r.refine_distance_computations for r in results
        )

    def test_fully_cached_shard_gets_zero_evaluations(self, gaussian_split, trained_qs):
        context, retriever = self._context_retriever(gaussian_split, trained_qs)
        queries = list(gaussian_split.queries)[:4]
        # Warm every (query, shard-0 member) pair: shard 0's refine work is
        # then fully cached, so the store-aware split must route zero exact
        # evaluations to it.
        shard0 = retriever.shards[0]
        warm_targets = np.arange(shard0.offset, shard0.offset + len(shard0))
        for query in queries:
            context.distances_to(query, warm_targets)
        baseline = retriever.shard_refine_evaluations
        assert baseline.sum() == 0
        results = retriever.query_many(queries, k=3, p=15)
        per_shard = retriever.shard_refine_evaluations
        assert per_shard[0] == 0
        # The other shards did real work (the filter keeps 15 candidates
        # spread across shards for these queries).
        assert per_shard.sum() == sum(
            r.refine_distance_computations for r in results
        )
        # And results equal the unsharded pipeline exactly.
        flat = FilterRefineRetriever(
            L2Distance(), gaussian_split.database, trained_qs.model
        )
        for lhs, rhs in zip(results, flat.query_many(queries, k=3, p=15)):
            assert np.array_equal(lhs.neighbor_indices, rhs.neighbor_indices)
            assert np.array_equal(lhs.neighbor_distances, rhs.neighbor_distances)

    def test_sharded_context_counts_match_unsharded(self, gaussian_split, trained_qs):
        context_a = DistanceContext(
            L2Distance(),
            list(gaussian_split.database) + list(gaussian_split.queries),
        )
        context_b = DistanceContext(
            L2Distance(),
            list(gaussian_split.database) + list(gaussian_split.queries),
        )
        queries = list(gaussian_split.queries)[:6]
        sharded = ShardedRetriever(
            context_a, gaussian_split.database, trained_qs.model, n_shards=4
        )
        flat = FilterRefineRetriever(
            context_b, gaussian_split.database, trained_qs.model
        )
        for lhs, rhs in zip(
            sharded.query_many(queries, k=3, p=12),
            flat.query_many(queries, k=3, p=12),
        ):
            assert np.array_equal(lhs.neighbor_indices, rhs.neighbor_indices)
            assert (
                lhs.refine_distance_computations == rhs.refine_distance_computations
            )


class TestDynamicTieOrder:
    def test_dynamic_ties_match_brute_force(self, trained_qs):
        # Four database points at identical distance from the query; the
        # embedding is free to rank them arbitrarily in the filter, so the
        # old filter-position tie-break could diverge from brute force.
        points = [
            np.array([1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            np.array([-1.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
            np.array([0.0, 1.0, 0.0, 0.0, 0.0, 0.0]),
            np.array([0.0, -1.0, 0.0, 0.0, 0.0, 0.0]),
            np.array([3.0, 0.0, 0.0, 0.0, 0.0, 0.0]),
        ]
        query = np.zeros(6)
        l2 = L2Distance()
        dynamic = DynamicDatabase(l2, trained_qs.model, initial_objects=points)
        indices, distances, cost = dynamic.query(query, k=4, p=len(points))
        brute = BruteForceRetriever(l2, Dataset(objects=points, name="tied"))
        expected_indices, expected_distances = brute.query(query, k=4)
        assert np.array_equal(indices, expected_indices)
        assert np.array_equal(distances, expected_distances)
        assert cost == trained_qs.model.cost + len(points)

    def test_dynamic_routes_through_shared_refine_stage(self, trained_qs):
        dynamic = DynamicDatabase(L2Distance(), trained_qs.model)
        assert isinstance(dynamic._refine, RefineStage)
        # The stage must track the live object list, not a snapshot.
        assert dynamic._refine.database is dynamic.objects
