"""Tests for the :mod:`repro.remote.protocol` wire framing.

The framing is the trust boundary of the distributed shard service: every
byte a shard server or client acts on went through ``decode_frame`` /
``recv_frame``.  The suite therefore covers three layers:

* **round trips** — every frame type and every supported value kind comes
  back equal, with dtypes, shapes and the list/tuple distinction intact;
* **rejection** — truncation, bit flips (via the same
  :func:`~repro.testing.faults.flip_byte` / ``truncate_file`` helpers the
  artifact-hardening tests use), version skew, unknown types, oversized
  length claims and trailing bytes all raise typed
  :class:`~repro.exceptions.RemoteProtocolError`\\ s — corruption must
  never decode;
* **a golden-bytes pin** — the exact encoding of a fixed FILTER frame, so
  an accidental wire-format change (which would strand deployed shard
  servers on the old dialect) fails loudly instead of silently.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.exceptions import (
    RemoteConnectionError,
    RemoteProtocolError,
    RemoteTimeout,
)
from repro.remote import protocol
from repro.remote.protocol import (
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    PROTOCOL_VERSION,
    FrameType,
)
from repro.testing.faults import flip_byte, truncate_file

#: The pinned wire bytes of GOLDEN_PAYLOAD in a FILTER frame (version 1).
#: If this test fails, the wire format changed: bump PROTOCOL_VERSION and
#: re-pin — old servers and new clients must not half-understand each
#: other.
GOLDEN_PAYLOAD = {
    "vectors": np.array([[1.0, 2.0], [3.0, 4.0]]),
    "p": 7,
    "tag": "golden",
    "flag": True,
    "nothing": None,
    "mix": [1.5, ("a", 2)],
}
GOLDEN_HEX = (
    "52420103000000b80de593020a000000b3000000060500000007766563746f7273"
    "070000002d033c6638020000000200000002000000000000f03f0000000000000040"
    "0000000000000840000000000000104005000000017003000000013705000000037461"
    "670500000006676f6c64656e0500000004666c6167020000000005000000076e6f7468"
    "696e67000000000005000000036d697808000000260000000204000000080000000000"
    "00f83f090000001000000002050000000161030000000132"
)


def roundtrip(payload, frame_type=FrameType.FILTER):
    frame = protocol.encode_frame(frame_type, payload)
    decoded_type, decoded = protocol.decode_frame(frame)
    assert decoded_type == frame_type
    return decoded


# --------------------------------------------------------------------------- #
# Round trips                                                                 #
# --------------------------------------------------------------------------- #


def test_every_frame_type_round_trips():
    for frame_type in FrameType:
        decoded = roundtrip({"n": int(frame_type)}, frame_type)
        assert decoded == {"n": int(frame_type)}


def test_scalar_values_round_trip():
    payload = {
        "none": None,
        "yes": True,
        "no": False,
        "small": 0,
        "negative": -12345,
        "huge": 2**80,
        "pi": 3.141592653589793,
        "text": "naïve — ünïcode",
        "raw": b"\x00\xff\x7f",
    }
    decoded = roundtrip(payload)
    assert decoded == payload
    assert isinstance(decoded["yes"], bool)
    assert isinstance(decoded["small"], int)


def test_arrays_round_trip_preserving_dtype_and_shape():
    arrays = {
        "f8": np.array([1.5, -2.5, np.inf]),
        "i8": np.arange(6, dtype=np.int64).reshape(2, 3),
        "i4": np.array([3, 1], dtype=np.int32),
        "bools": np.array([True, False]),
        "empty": np.empty((0,), dtype=np.float64),
        "scalarish": np.array(7.0),
    }
    decoded = roundtrip(arrays)
    for key, value in arrays.items():
        assert decoded[key].dtype == value.dtype, key
        assert decoded[key].shape == value.shape, key
        np.testing.assert_array_equal(decoded[key], value)


def test_containers_round_trip_keeping_list_tuple_distinction():
    payload = {
        "nested": {"inner": [1, [2, 3], {"deep": (4, "five")}]},
        "pairs": [(0, 1.0), (2, 3.0)],
        "empty_list": [],
        "empty_dict": {},
    }
    decoded = roundtrip(payload)
    assert decoded == payload
    assert isinstance(decoded["pairs"][0], tuple)
    assert isinstance(decoded["nested"]["inner"][1], list)
    assert isinstance(decoded["nested"]["inner"][2]["deep"], tuple)


def test_socket_send_recv_round_trip():
    left, right = socket.socketpair()
    try:
        left.settimeout(5.0)
        right.settimeout(5.0)
        sent = protocol.send_frame(left, FrameType.REFINE, GOLDEN_PAYLOAD)
        frame_type, payload, received = protocol.recv_frame(right)
        assert frame_type == FrameType.REFINE
        assert sent == received
        np.testing.assert_array_equal(
            payload["vectors"], GOLDEN_PAYLOAD["vectors"]
        )
        assert payload["mix"] == GOLDEN_PAYLOAD["mix"]
    finally:
        left.close()
        right.close()


# --------------------------------------------------------------------------- #
# Typed rejection of damage                                                   #
# --------------------------------------------------------------------------- #


def write_frame(tmp_path, payload=None, frame_type=FrameType.FILTER):
    path = tmp_path / "frame.bin"
    path.write_bytes(
        protocol.encode_frame(frame_type, payload or GOLDEN_PAYLOAD)
    )
    return path


def test_truncated_frame_raises_protocol_error(tmp_path):
    path = write_frame(tmp_path)
    truncate_file(path, keep_fraction=0.5)
    with pytest.raises(RemoteProtocolError, match="truncated frame payload"):
        protocol.decode_frame(path.read_bytes())


def test_truncated_header_raises_protocol_error(tmp_path):
    path = write_frame(tmp_path)
    data = path.read_bytes()[: HEADER_SIZE - 3]
    with pytest.raises(RemoteProtocolError, match="truncated frame header"):
        protocol.decode_frame(data)


def test_payload_bit_flip_fails_the_checksum(tmp_path):
    path = write_frame(tmp_path)
    flip_byte(path, offset=-1)
    with pytest.raises(RemoteProtocolError, match="checksum mismatch"):
        protocol.decode_frame(path.read_bytes())


def test_magic_bit_flip_is_rejected(tmp_path):
    path = write_frame(tmp_path)
    flip_byte(path, offset=0)
    with pytest.raises(RemoteProtocolError, match="bad frame magic"):
        protocol.decode_frame(path.read_bytes())


def test_version_skew_is_named_not_decoded(tmp_path):
    path = write_frame(tmp_path)
    flip_byte(path, offset=2)
    with pytest.raises(RemoteProtocolError, match="version skew"):
        protocol.decode_frame(path.read_bytes())


def test_unknown_frame_type_is_rejected(tmp_path):
    path = write_frame(tmp_path)
    flip_byte(path, offset=3)
    with pytest.raises(RemoteProtocolError, match="unknown frame type"):
        protocol.decode_frame(path.read_bytes())


def test_oversized_length_claim_is_rejected():
    header = (
        MAGIC
        + PROTOCOL_VERSION.to_bytes(1, "big")
        + int(FrameType.FILTER).to_bytes(1, "big")
        + (MAX_PAYLOAD_BYTES + 1).to_bytes(4, "big")
        + (0).to_bytes(4, "big")
    )
    with pytest.raises(RemoteProtocolError, match="bound"):
        protocol.decode_frame(header)


def test_trailing_bytes_are_rejected():
    frame = bytearray(protocol.encode_frame(FrameType.HEALTH, {"a": 1}))
    body = bytes(frame[HEADER_SIZE:]) + b"\x00"
    with pytest.raises(RemoteProtocolError, match="trailing"):
        protocol.decode_payload(body)


def test_unencodable_values_are_refused():
    with pytest.raises(RemoteProtocolError, match="cannot encode"):
        protocol.encode_payload({"bad": object()})
    with pytest.raises(RemoteProtocolError, match="string keys"):
        protocol.encode_payload({"bad": {1: "x"}})
    with pytest.raises(RemoteProtocolError):
        protocol.encode_payload({"bad": np.array([object()], dtype=object)})


def test_recv_timeout_and_peer_death_are_typed(tmp_path):
    left, right = socket.socketpair()
    try:
        right.settimeout(0.05)
        with pytest.raises(RemoteTimeout):
            protocol.recv_frame(right)
        left.close()
        with pytest.raises(RemoteConnectionError, match="peer closed"):
            protocol.recv_frame(right)
    finally:
        right.close()


def test_mid_frame_peer_death_is_a_short_read(tmp_path):
    left, right = socket.socketpair()
    try:
        right.settimeout(5.0)
        frame = protocol.encode_frame(FrameType.FILTER, GOLDEN_PAYLOAD)
        left.sendall(frame[: HEADER_SIZE + 5])
        left.close()
        with pytest.raises(RemoteConnectionError, match="mid-frame"):
            protocol.recv_frame(right)
    finally:
        right.close()


# --------------------------------------------------------------------------- #
# Golden bytes                                                                #
# --------------------------------------------------------------------------- #


def test_golden_frame_bytes_are_pinned():
    frame = protocol.encode_frame(FrameType.FILTER, GOLDEN_PAYLOAD)
    assert frame.hex() == GOLDEN_HEX
    assert frame[:2] == MAGIC
    assert frame[2] == PROTOCOL_VERSION == 1
    assert HEADER_SIZE == 12
    frame_type, decoded = protocol.decode_frame(bytes.fromhex(GOLDEN_HEX))
    assert frame_type == FrameType.FILTER
    np.testing.assert_array_equal(
        decoded["vectors"], GOLDEN_PAYLOAD["vectors"]
    )
    assert decoded["mix"] == GOLDEN_PAYLOAD["mix"]
