"""End-to-end tests for the distributed shard service (``repro.remote``).

The acceptance bar (ISSUE 9) is **bit-identity**: the remote backend's
results, tie order and per-query exact-evaluation accounting must equal
the in-process ``"sharded"`` backend on the same artifact — on clean runs,
under injected socket faults (frame corruption, mid-reply connection
kills, slow peers), with a shard server SIGKILLed mid-session, and across
warm second batches.  Every test therefore runs the same query sequence
through a fresh local index and a fresh remote one and compares the full
result surface.

Real subprocesses, real sockets: clusters come from
:class:`~repro.remote.cluster.LocalCluster`, faults from the same
:class:`~repro.testing.faults.FaultPlan` the pool-chaos suite uses.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    EmbeddingIndex,
    IndexConfig,
    L2Distance,
    RetrievalSplit,
    TrainingConfig,
    make_gaussian_clusters,
)
from repro.exceptions import ArtifactError, ConfigurationError
from repro.remote import LocalCluster, use_remote_backend
from repro.testing.faults import FaultPlan

pytestmark = pytest.mark.chaos

N_SHARDS = 2
K, P = 3, 10


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    """One saved sharded artifact plus its dataset and queries."""
    training = TrainingConfig(
        n_candidates=25,
        n_training_objects=25,
        n_triples=400,
        n_rounds=8,
        classifiers_per_round=15,
        intervals_per_candidate=4,
        kmax=5,
        seed=2,
    )
    dataset = make_gaussian_clusters(n_objects=90, n_clusters=5, n_dims=5, seed=21)
    split = RetrievalSplit.from_dataset(dataset, n_queries=10, seed=22)
    config = IndexConfig(
        training=training, backend="sharded", n_shards=N_SHARDS, n_jobs=None
    )
    index = EmbeddingIndex.build(L2Distance(), split.database, config)
    artifact = tmp_path_factory.mktemp("remote_world") / "artifact"
    index.save(artifact, compress_store=False)
    index.close()
    return artifact, split


def open_local(world):
    artifact, split = world
    return EmbeddingIndex.open(artifact, split.database)


def open_remote(world, cluster, **kwargs):
    artifact, split = world
    index = EmbeddingIndex.open(artifact, split.database)
    backend = use_remote_backend(index, cluster.addresses, **kwargs)
    return index, backend


def assert_bit_identical(local_results, remote_results):
    assert len(local_results) == len(remote_results)
    for local, remote in zip(local_results, remote_results):
        np.testing.assert_array_equal(
            local.neighbor_indices, remote.neighbor_indices
        )
        np.testing.assert_array_equal(
            local.neighbor_distances, remote.neighbor_distances
        )
        np.testing.assert_array_equal(
            local.candidate_indices, remote.candidate_indices
        )
        assert (
            local.refine_distance_computations
            == remote.refine_distance_computations
        )
        assert (
            local.embedding_distance_computations
            == remote.embedding_distance_computations
        )


def test_clean_scatter_gather_is_bit_identical(world):
    _, split = world
    local = open_local(world)
    with LocalCluster(world[0], split.database, n_shards=N_SHARDS) as cluster:
        remote, backend = open_remote(world, cluster)
        # Batch path, then the single-query path, then a warm repeat batch
        # (second-batch costs drop to store hits — they must drop the same
        # way on both sides).
        assert_bit_identical(
            local.query_many(split.queries, k=K, p=P),
            remote.query_many(split.queries, k=K, p=P),
        )
        assert_bit_identical(
            [local.query(split.queries[0], k=K, p=P)],
            [remote.query(split.queries[0], k=K, p=P)],
        )
        assert_bit_identical(
            local.query_many(split.queries, k=K, p=P),
            remote.query_many(split.queries, k=K, p=P),
        )
        health = remote.health()["remote"]
        assert health["degraded"] is False
        assert health["fallbacks"] == 0
        assert health["round_trips"] > 0
        assert health["bytes_sent"] > 0 and health["bytes_received"] > 0
        local.close()
        remote.close()


def test_corrupt_frame_is_retried_without_degrading(world):
    _, split = world
    local = open_local(world)
    faults = {0: FaultPlan(corrupt_frame=2)}
    with LocalCluster(
        world[0], split.database, n_shards=N_SHARDS, faults=faults
    ) as cluster:
        remote, backend = open_remote(world, cluster)
        assert_bit_identical(
            local.query_many(split.queries, k=K, p=P),
            remote.query_many(split.queries, k=K, p=P),
        )
        health = remote.health()["remote"]
        assert health["retries"] >= 1
        assert health["degraded"] is False
        assert health["fallbacks"] == 0
        local.close()
        remote.close()


def test_mid_reply_connection_kill_is_retried(world):
    _, split = world
    faults = {1: FaultPlan(kill_connection_after=2)}
    local = open_local(world)
    with LocalCluster(
        world[0], split.database, n_shards=N_SHARDS, faults=faults
    ) as cluster:
        remote, backend = open_remote(world, cluster)
        assert_bit_identical(
            local.query_many(split.queries, k=K, p=P),
            remote.query_many(split.queries, k=K, p=P),
        )
        health = remote.health()["remote"]
        assert health["retries"] >= 1
        assert health["degraded"] is False
        local.close()
        remote.close()


def test_slow_peer_blows_the_deadline_and_is_retried(world):
    _, split = world
    faults = {0: FaultPlan(slow_frame=2, slow_frame_seconds=1.5)}
    local = open_local(world)
    with LocalCluster(
        world[0], split.database, n_shards=N_SHARDS, faults=faults
    ) as cluster:
        remote, backend = open_remote(world, cluster, read_timeout=0.4)
        assert_bit_identical(
            local.query_many(split.queries, k=K, p=P),
            remote.query_many(split.queries, k=K, p=P),
        )
        health = remote.health()["remote"]
        assert health["retries"] >= 1
        local.close()
        remote.close()


def test_killed_shard_degrades_to_local_fallback_then_revives(world):
    _, split = world
    local = open_local(world)
    with LocalCluster(world[0], split.database, n_shards=N_SHARDS) as cluster:
        remote, backend = open_remote(world, cluster)
        assert_bit_identical(
            local.query_many(split.queries, k=K, p=P),
            remote.query_many(split.queries, k=K, p=P),
        )
        cluster.kill(1)
        # Two degraded batches: the second exercises the once-per-batch
        # revival probe against a still-dead port.
        for _ in range(2):
            assert_bit_identical(
                local.query_many(split.queries, k=K, p=P),
                remote.query_many(split.queries, k=K, p=P),
            )
        health = remote.health()
        assert health["degraded"] is True
        assert health["remote"]["degraded"] is True
        assert health["remote"]["fallbacks"] >= 2  # filter + refine per batch
        cluster.restart(1)
        assert_bit_identical(
            local.query_many(split.queries, k=K, p=P),
            remote.query_many(split.queries, k=K, p=P),
        )
        health = remote.health()["remote"]
        assert health["degraded"] is False
        assert sum(s["revivals"] for s in health["shards"]) == 1
        local.close()
        remote.close()


def test_planner_routes_remote_then_replans_local_when_a_shard_dies(world):
    """The adaptive planner over real sockets keeps the bit-identity bar.

    With a fitted round-trip cost that undercuts the local prediction the
    planner ships whole fixed-``p'`` batches to the shard service; those
    results must equal the local run at the same ``p'``.  Once a shard is
    killed (and a probe marks the backend degraded), the next batch must
    re-plan onto the local path — same answers, no remote traffic.
    """
    from repro.retrieval import PlannedRetriever

    _, split = world
    queries = list(split.queries)
    local = open_local(world)
    with LocalCluster(world[0], split.database, n_shards=N_SHARDS) as cluster:
        remote, backend = open_remote(world, cluster)
        remote.enable_planner()
        planner = remote._backend
        assert isinstance(planner, PlannedRetriever)
        planner.attach_remote(backend)
        # Fit a round-trip cost the predicted local run cannot beat.
        planner.model.exact_eval_seconds = 1.0
        planner.model.remote_round_trip_seconds = 1e-9
        planned = remote.query_many(queries, k=K)
        assert planner._last_decision["backend"] == "remote_sharded"
        chosen = {result.stats["planned_p"] for result in planned}
        assert len(chosen) == 1  # one fixed p' per shipped batch
        p_prime = chosen.pop()
        assert_bit_identical(
            local.query_many(queries, k=K, p=p_prime), planned
        )
        # Kill a shard: the client's own fallback marks the connection
        # dead, the planner's health probe sees it, and the batch after
        # that runs locally.
        cluster.kill(0)
        backend.query(queries[0], K, P)
        assert backend.health()["degraded"] is True
        replanned = remote.query_many(queries, k=K)
        assert planner._last_decision["backend"] != "remote_sharded"
        for query, result in zip(queries, replanned):
            check = local.query(query, k=K, p=result.stats["planned_p"])
            np.testing.assert_array_equal(
                result.neighbor_indices, check.neighbor_indices
            )
            np.testing.assert_array_equal(
                result.neighbor_distances, check.neighbor_distances
            )
        local.close()
        remote.close()


def test_miswired_addresses_never_serve_wrong_answers(world):
    _, split = world
    local = open_local(world)
    with LocalCluster(world[0], split.database, n_shards=N_SHARDS) as cluster:
        swapped = list(reversed(cluster.addresses))
        remote = EmbeddingIndex.open(world[0], split.database)
        use_remote_backend(remote, swapped, retries=0)
        # Every HELLO handshake fails the layout check, both shards fall
        # back locally: degraded, slower — but bit-identical, never wrong.
        assert_bit_identical(
            local.query_many(split.queries, k=K, p=P),
            remote.query_many(split.queries, k=K, p=P),
        )
        assert remote.health()["remote"]["degraded"] is True
        local.close()
        remote.close()


def test_address_count_must_match_the_shard_layout(world):
    _, split = world
    remote = EmbeddingIndex.open(world[0], split.database)
    with pytest.raises(ConfigurationError, match="address"):
        use_remote_backend(remote, [("127.0.0.1", 1)])
    remote.close()


def test_single_shard_open_refuses_inconsistent_spec(world):
    _, split = world
    with pytest.raises(ArtifactError, match="shard"):
        EmbeddingIndex.open(world[0], split.database, shard=f"0/{N_SHARDS + 1}")
    with pytest.raises(ArtifactError, match="shard"):
        EmbeddingIndex.open(world[0], split.database, shard="2/2:0-45")
