"""Tests for ground truth, brute force, filter-and-refine and evaluation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset
from repro.distances import CountingDistance, L2Distance
from repro.embeddings import build_fastmap_embedding
from repro.exceptions import RetrievalError
from repro.retrieval import (
    BruteForceRetriever,
    FilterRefineRetriever,
    NeighborTable,
    ground_truth_neighbors,
)
from repro.retrieval.evaluation import (
    cost_for_accuracy,
    filter_ranks,
    required_filter_sizes,
    success_rate,
)
from repro.retrieval.knn import knn_from_distances
from repro.retrieval.sweep import DimensionSweep, optimal_cost_curve, truncate_embedder


class TestNeighborTable:
    def test_knn_from_distances(self):
        matrix = np.array([[0.5, 0.1, 0.9], [0.2, 0.8, 0.05]])
        table = knn_from_distances(matrix, k=2)
        assert list(table.indices[0]) == [1, 0]
        assert list(table.indices[1]) == [2, 0]
        assert table.distances[0, 0] == pytest.approx(0.1)
        assert table.n_queries == 2 and table.k_max == 2

    def test_neighbors_accessor_bounds(self):
        table = knn_from_distances(np.array([[0.1, 0.2, 0.3]]), k=2)
        assert list(table.neighbors(0, 1)) == [0]
        with pytest.raises(RetrievalError):
            table.neighbors(0, 3)

    def test_k_bounds(self):
        with pytest.raises(RetrievalError):
            knn_from_distances(np.ones((2, 3)), k=4)

    def test_shape_validation(self):
        with pytest.raises(RetrievalError):
            NeighborTable(indices=np.zeros((2, 3)), distances=np.zeros((2, 2)))


class TestGroundTruth:
    def test_matches_brute_force(self, gaussian_split, l2, gaussian_ground_truth):
        brute = BruteForceRetriever(l2, gaussian_split.database)
        for qi in (0, 5, 17):
            indices, distances = brute.query(gaussian_split.queries[qi], k=5)
            assert list(indices) == list(gaussian_ground_truth.indices[qi, :5])

    def test_return_matrix_option(self, gaussian_split, l2):
        table, matrix = ground_truth_neighbors(
            l2, gaussian_split.database, gaussian_split.queries, k_max=3, return_matrix=True
        )
        assert matrix.shape == (len(gaussian_split.queries), len(gaussian_split.database))
        assert table.k_max == 3

    def test_k_max_bounds(self, gaussian_split, l2):
        with pytest.raises(RetrievalError):
            ground_truth_neighbors(
                l2, gaussian_split.database, gaussian_split.queries, k_max=0
            )


class TestBruteForce:
    def test_cost_equals_database_size(self, gaussian_split, l2):
        brute = BruteForceRetriever(l2, gaussian_split.database)
        brute.query(gaussian_split.queries[0], k=3)
        assert brute.distance_computations == len(gaussian_split.database)
        brute.reset_counter()
        assert brute.distance_computations == 0

    def test_results_sorted_by_distance(self, gaussian_split, l2):
        brute = BruteForceRetriever(l2, gaussian_split.database)
        _, distances = brute.query(gaussian_split.queries[1], k=10)
        assert np.all(np.diff(distances) >= 0)

    def test_k_bounds(self, gaussian_split, l2):
        brute = BruteForceRetriever(l2, gaussian_split.database)
        with pytest.raises(RetrievalError):
            brute.query(gaussian_split.queries[0], k=0)

    def test_query_many(self, gaussian_split, l2):
        brute = BruteForceRetriever(l2, gaussian_split.database)
        results = brute.query_many(list(gaussian_split.queries)[:3], k=2)
        assert len(results) == 3

    def test_type_validation(self, gaussian_split, l2):
        with pytest.raises(RetrievalError):
            BruteForceRetriever(lambda a, b: 0.0, gaussian_split.database)
        with pytest.raises(RetrievalError):
            BruteForceRetriever(l2, [1, 2, 3])


class TestFilterRefine:
    def test_cost_accounting(self, gaussian_split, l2, trained_qs):
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        result = retriever.query(gaussian_split.queries[0], k=3, p=15)
        assert result.refine_distance_computations == 15
        assert result.embedding_distance_computations == trained_qs.model.cost
        assert (
            result.total_distance_computations
            == trained_qs.model.cost + 15
        )
        assert result.candidate_indices.shape == (15,)
        assert result.neighbor_indices.shape == (3,)

    def test_full_p_recovers_exact_neighbors(
        self, gaussian_split, l2, trained_qs, gaussian_ground_truth
    ):
        """With p = |database| the refine step sees everything, so results are exact."""
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        n = len(gaussian_split.database)
        for qi in (0, 7):
            result = retriever.query(gaussian_split.queries[qi], k=4, p=n)
            assert list(result.neighbor_indices) == list(
                gaussian_ground_truth.indices[qi, :4]
            )

    def test_neighbors_sorted_by_exact_distance(self, gaussian_split, l2, trained_qs):
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        result = retriever.query(gaussian_split.queries[2], k=5, p=20)
        assert np.all(np.diff(result.neighbor_distances) >= 0)

    def test_works_with_plain_embedding(self, gaussian_split, l2):
        fastmap = build_fastmap_embedding(l2, gaussian_split.database, dim=4, seed=0)
        retriever = FilterRefineRetriever(l2, gaussian_split.database, fastmap)
        result = retriever.query(gaussian_split.queries[0], k=2, p=10)
        assert result.embedding_distance_computations == 8

    def test_precomputed_vectors_accepted(self, gaussian_split, l2, trained_qs):
        vectors = trained_qs.model.embed_many(list(gaussian_split.database))
        retriever = FilterRefineRetriever(
            l2, gaussian_split.database, trained_qs.model, database_vectors=vectors
        )
        assert retriever.database_vectors.shape == vectors.shape

    def test_wrong_vector_shape_rejected(self, gaussian_split, l2, trained_qs):
        with pytest.raises(RetrievalError):
            FilterRefineRetriever(
                l2,
                gaussian_split.database,
                trained_qs.model,
                database_vectors=np.zeros((3, trained_qs.model.dim)),
            )

    def test_parameter_bounds(self, gaussian_split, l2, trained_qs):
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        with pytest.raises(RetrievalError):
            retriever.query(gaussian_split.queries[0], k=0, p=5)
        with pytest.raises(RetrievalError):
            retriever.query(gaussian_split.queries[0], k=1, p=0)

    def test_k_larger_than_p_clamps_p_up(self, gaussian_split, l2, trained_qs):
        """k > p raises the refine size to k so all k neighbors come back."""
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        result = retriever.query(gaussian_split.queries[0], k=10, p=5)
        assert result.neighbor_indices.shape == (10,)
        assert result.refine_distance_computations == 10

    def test_p_larger_than_database_clamps_to_brute_force(
        self, gaussian_split, l2, trained_qs
    ):
        """p > n clamps to n; results then equal an exact brute-force scan."""
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        brute = BruteForceRetriever(l2, gaussian_split.database)
        n = len(gaussian_split.database)
        result = retriever.query(gaussian_split.queries[1], k=6, p=10**6)
        assert result.refine_distance_computations == n
        indices, distances = brute.query(gaussian_split.queries[1], k=6)
        np.testing.assert_array_equal(result.neighbor_indices, indices)
        np.testing.assert_allclose(result.neighbor_distances, distances)

    def test_k_larger_than_database_returns_min_k_n(
        self, gaussian_split, l2, trained_qs
    ):
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        n = len(gaussian_split.database)
        result = retriever.query(gaussian_split.queries[2], k=n + 25, p=n + 25)
        assert result.neighbor_indices.shape == (n,)
        assert result.refine_distance_computations == n

    def test_query_many_parallel_matches_serial(self, gaussian_split, l2, trained_qs):
        retriever = FilterRefineRetriever(l2, gaussian_split.database, trained_qs.model)
        queries = list(gaussian_split.queries)[:5]
        serial = retriever.query_many(queries, k=3, p=12)
        parallel = retriever.query_many(queries, k=3, p=12, n_jobs=2)
        for s, par in zip(serial, parallel):
            np.testing.assert_array_equal(s.neighbor_indices, par.neighbor_indices)
            np.testing.assert_array_equal(s.neighbor_distances, par.neighbor_distances)
            assert s.total_distance_computations == par.total_distance_computations


class TestEvaluation:
    @pytest.fixture(scope="class")
    def rank_result(self, gaussian_split, trained_qs, gaussian_ground_truth):
        model = trained_qs.model
        db_vectors = model.embed_many(list(gaussian_split.database))
        query_vectors = model.embed_many(list(gaussian_split.queries))
        return filter_ranks(model, db_vectors, query_vectors, gaussian_ground_truth)

    def test_rank_matrix_shape_and_bounds(self, rank_result, gaussian_split):
        assert rank_result.rank_matrix.shape == (
            len(gaussian_split.queries),
            10,
        )
        assert rank_result.rank_matrix.min() >= 1
        assert rank_result.rank_matrix.max() <= len(gaussian_split.database)

    def test_required_filter_sizes_monotone_in_k(self, rank_result):
        p1 = required_filter_sizes(rank_result, 1)
        p5 = required_filter_sizes(rank_result, 5)
        assert np.all(p5 >= p1)

    def test_cost_for_accuracy_monotone_in_accuracy(self, rank_result, gaussian_split):
        n = len(gaussian_split.database)
        costs = [
            cost_for_accuracy(rank_result, 1, acc, n).cost for acc in (0.5, 0.9, 1.0)
        ]
        assert costs[0] <= costs[1] <= costs[2]

    def test_cost_capped_at_brute_force(self, rank_result):
        point = cost_for_accuracy(rank_result, 10, 1.0, database_size=5)
        assert point.cost == 5

    def test_success_rate_consistent_with_cost(self, rank_result, gaussian_split):
        n = len(gaussian_split.database)
        point = cost_for_accuracy(rank_result, 3, 0.9, n)
        assert success_rate(rank_result, 3, point.p) >= 0.9
        if point.p > 1:
            assert success_rate(rank_result, 3, point.p - 1) < 0.9

    def test_accuracy_bounds_validated(self, rank_result):
        with pytest.raises(RetrievalError):
            cost_for_accuracy(rank_result, 1, 0.0, 100)
        with pytest.raises(RetrievalError):
            cost_for_accuracy(rank_result, 1, 1.5, 100)
        with pytest.raises(RetrievalError):
            required_filter_sizes(rank_result, 0)

    def test_filter_ranks_validates_shapes(self, trained_qs, gaussian_ground_truth):
        with pytest.raises(RetrievalError):
            filter_ranks(
                trained_qs.model,
                np.zeros((10, trained_qs.model.dim)),
                np.zeros((3, trained_qs.model.dim + 1)),
                gaussian_ground_truth,
            )


class TestDimensionSweep:
    @pytest.fixture(scope="class")
    def sweep(self, gaussian_split, trained_qs, gaussian_ground_truth):
        model = trained_qs.model
        db_vectors = model.embed_many(list(gaussian_split.database))
        query_vectors = model.embed_many(list(gaussian_split.queries))
        return DimensionSweep(
            model, db_vectors, query_vectors, gaussian_ground_truth, dims=(1, 2, 4, 64)
        )

    def test_dims_clipped_and_deduplicated(self, sweep, trained_qs):
        assert max(sweep.dims) <= trained_qs.model.dim
        assert len(sweep.dims) == len(set(sweep.dims))

    def test_best_point_minimises_over_dims(self, sweep, gaussian_split):
        best = sweep.best_point(k=1, accuracy=0.9, database_size=len(gaussian_split.database))
        for entry in sweep.entries:
            point = cost_for_accuracy(
                entry.rank_result, 1, 0.9, len(gaussian_split.database)
            )
            assert best.cost <= point.cost

    def test_optimal_cost_curve_structure(self, sweep, gaussian_split):
        curve = optimal_cost_curve(sweep, ks=(1, 5), accuracies=(0.9, 1.0))
        assert set(curve.keys()) == {0.9, 1.0}
        assert set(curve[0.9].keys()) == {1, 5}
        assert curve[0.9][1].cost <= curve[1.0][1].cost

    def test_truncate_embedder_on_unsupported_type(self):
        with pytest.raises(RetrievalError):
            truncate_embedder("not-an-embedder", 2)

    def test_sweep_requires_matching_dims(self, trained_qs, gaussian_ground_truth):
        with pytest.raises(RetrievalError):
            DimensionSweep(
                trained_qs.model,
                np.zeros((5, trained_qs.model.dim + 1)),
                np.zeros((3, trained_qs.model.dim + 1)),
                gaussian_ground_truth,
                dims=(1,),
            )
