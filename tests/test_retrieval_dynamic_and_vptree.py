"""Tests for dynamic-database maintenance, drift detection and the VP-tree."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_gaussian_clusters
from repro.distances import ConstrainedDTW, L2Distance
from repro.exceptions import RetrievalError
from repro.index import VPTree
from repro.retrieval import BruteForceRetriever, DriftMonitor, DynamicDatabase


class TestDynamicDatabase:
    def test_add_and_query(self, gaussian_split, l2, trained_qs):
        dynamic = DynamicDatabase(
            l2, trained_qs.model, initial_objects=list(gaussian_split.database)
        )
        assert len(dynamic) == len(gaussian_split.database)
        indices, distances, cost = dynamic.query(gaussian_split.queries[0], k=3, p=15)
        assert indices.shape == (3,)
        assert np.all(np.diff(distances) >= 0)
        assert cost == trained_qs.model.cost + 15

    def test_insertion_cost_tracked(self, gaussian_split, l2, trained_qs):
        dynamic = DynamicDatabase(l2, trained_qs.model)
        dynamic.add(gaussian_split.database[0])
        dynamic.add(gaussian_split.database[1])
        assert dynamic.insertion_distance_computations == 2 * trained_qs.model.cost
        # The paper's bound: embedding a new object needs at most 2d distances.
        assert trained_qs.model.cost <= 2 * trained_qs.model.dim

    def test_remove(self, gaussian_split, l2, trained_qs):
        dynamic = DynamicDatabase(
            l2, trained_qs.model, initial_objects=list(gaussian_split.database)[:5]
        )
        removed = dynamic.remove(2)
        assert len(dynamic) == 4
        assert removed is gaussian_split.database[2]
        with pytest.raises(RetrievalError):
            dynamic.remove(10)

    def test_query_added_object_is_its_own_neighbor(self, gaussian_split, l2, trained_qs):
        dynamic = DynamicDatabase(
            l2, trained_qs.model, initial_objects=list(gaussian_split.database)[:30]
        )
        new_object = gaussian_split.queries[0]
        index = dynamic.add(new_object)
        indices, distances, _ = dynamic.query(new_object, k=1, p=10)
        assert indices[0] == index
        assert distances[0] == pytest.approx(0.0)

    def test_empty_database_query_rejected(self, l2, trained_qs):
        dynamic = DynamicDatabase(l2, trained_qs.model)
        with pytest.raises(RetrievalError):
            dynamic.query(np.zeros(6), k=1, p=1)

    def test_vectors_matrix_shape(self, gaussian_split, l2, trained_qs):
        dynamic = DynamicDatabase(
            l2, trained_qs.model, initial_objects=list(gaussian_split.database)[:7]
        )
        assert dynamic.vectors.shape == (7, trained_qs.model.dim)

    def test_type_validation(self, l2, trained_qs):
        with pytest.raises(RetrievalError):
            DynamicDatabase(lambda a, b: 0.0, trained_qs.model)
        with pytest.raises(RetrievalError):
            DynamicDatabase(l2, "not-a-model")


class TestDriftMonitor:
    def test_no_drift_on_same_distribution(self, gaussian_split, l2, trained_qs):
        baseline = trained_qs.final_training_error
        monitor = DriftMonitor(
            distance=l2, model=trained_qs.model, baseline_error=baseline, tolerance=0.2
        )
        same_distribution = list(gaussian_split.database)[:40]
        assert monitor.has_drifted(same_distribution, n_triples=300, seed=0) is False

    def test_drift_detected_on_shifted_distribution(self, l2, trained_qs):
        baseline = trained_qs.final_training_error
        monitor = DriftMonitor(
            distance=l2, model=trained_qs.model, baseline_error=baseline, tolerance=0.05
        )
        # A completely different distribution: far-away, tightly packed points.
        shifted = make_gaussian_clusters(
            n_objects=40, n_clusters=2, n_dims=6, cluster_spread=0.001, seed=10
        )
        shifted_objects = [obj + 50.0 for obj in shifted.objects]
        error = monitor.measure_error(shifted_objects, n_triples=300, seed=0)
        assert error > baseline

    def test_measure_error_requires_enough_objects(self, l2, trained_qs):
        monitor = DriftMonitor(l2, trained_qs.model, baseline_error=0.1)
        with pytest.raises(RetrievalError):
            monitor.measure_error([np.zeros(6)], n_triples=10)


class TestVPTree:
    @pytest.fixture(scope="class")
    def euclidean_objects(self):
        dataset = make_gaussian_clusters(n_objects=120, n_clusters=4, n_dims=5, seed=6)
        return list(dataset.objects)

    def test_exact_results_match_brute_force(self, euclidean_objects, l2):
        tree = VPTree(l2, euclidean_objects, leaf_size=4, seed=0)
        from repro.datasets import Dataset

        brute = BruteForceRetriever(l2, Dataset(objects=euclidean_objects))
        rng = np.random.default_rng(0)
        for _ in range(10):
            query = rng.normal(size=5)
            tree_idx, tree_dist = tree.query(query, k=5)
            brute_idx, brute_dist = brute.query(query, k=5)
            assert np.allclose(sorted(tree_dist), sorted(brute_dist))

    def test_prunes_compared_to_brute_force(self, euclidean_objects, l2):
        tree = VPTree(l2, euclidean_objects, leaf_size=4, seed=0)
        tree.reset_counter()
        tree.query(np.zeros(5), k=1)
        assert tree.distance_computations < len(euclidean_objects)

    def test_construction_cost_recorded(self, euclidean_objects, l2):
        tree = VPTree(l2, euclidean_objects, leaf_size=8, seed=0)
        assert tree.construction_distance_computations > 0

    def test_non_metric_distance_rejected_by_default(self):
        series = [np.random.default_rng(i).normal(size=(10, 1)) for i in range(10)]
        with pytest.raises(RetrievalError):
            VPTree(ConstrainedDTW(), series)
        # ... but can be forced for demonstration purposes.
        tree = VPTree(ConstrainedDTW(), series, require_metric=False)
        indices, _ = tree.query(series[0], k=1)
        assert indices.shape == (1,)

    def test_k_bounds(self, euclidean_objects, l2):
        tree = VPTree(l2, euclidean_objects[:10], seed=0)
        with pytest.raises(RetrievalError):
            tree.query(np.zeros(5), k=0)
        with pytest.raises(RetrievalError):
            tree.query(np.zeros(5), k=11)

    def test_empty_collection_rejected(self, l2):
        with pytest.raises(RetrievalError):
            VPTree(l2, [])

    def test_duplicate_heavy_data_handled(self, l2):
        objects = [np.zeros(3)] * 20 + [np.ones(3)]
        tree = VPTree(l2, objects, leaf_size=2, seed=0)
        indices, distances = tree.query(np.ones(3), k=1)
        assert distances[0] == pytest.approx(0.0)
