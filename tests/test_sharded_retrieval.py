"""Property tests for sharded + process-parallel retrieval.

The contract of :class:`~repro.retrieval.sharded.ShardedRetriever` is strict:
for any shard count and any ``n_jobs``, neighbors, distances, candidate
lists and per-query exact-distance accounting must be *bit-identical* to the
single-process unsharded
:class:`~repro.retrieval.filter_refine.FilterRefineRetriever`.  The suite
checks that contract over symmetric (L2) and asymmetric (KL) measures, over
databases stuffed with duplicate objects (so distance ties are everywhere),
and over the clamped edge cases (``p > n``, ``k > p``, ``k`` larger than any
single shard's population).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import Dataset, make_gaussian_clusters, RetrievalSplit
from repro.distances import (
    CachedDistance,
    CountingDistance,
    KLDivergence,
    L2Distance,
)
from repro.embeddings import build_lipschitz_embedding
from repro.exceptions import DistanceError, RetrievalError
from repro.retrieval import (
    BruteForceRetriever,
    FilterRefineRetriever,
    ShardedRetriever,
    ground_truth_neighbors,
    retrieval_recall,
)


def _content_key(arr):
    """A stable (content-based) cache key that survives pickling."""
    return tuple(np.asarray(arr).ravel())


def assert_results_identical(lhs, rhs):
    """Bit-identical RetrievalResult lists: neighbors, distances, costs."""
    assert len(lhs) == len(rhs)
    for a, b in zip(lhs, rhs):
        np.testing.assert_array_equal(a.neighbor_indices, b.neighbor_indices)
        np.testing.assert_array_equal(a.neighbor_distances, b.neighbor_distances)
        np.testing.assert_array_equal(a.candidate_indices, b.candidate_indices)
        assert a.embedding_distance_computations == b.embedding_distance_computations
        assert a.refine_distance_computations == b.refine_distance_computations


@pytest.fixture(scope="module")
def l2_setup():
    """Gaussian split + Lipschitz embedding under L2."""
    dataset = make_gaussian_clusters(n_objects=110, n_clusters=4, n_dims=5, seed=31)
    split = RetrievalSplit.from_dataset(dataset, n_queries=10, seed=32)
    distance = L2Distance()
    embedding = build_lipschitz_embedding(
        distance, split.database, dim=5, set_size=1, seed=33
    )
    return distance, split, embedding


@pytest.fixture(scope="module")
def kl_setup():
    """Probability-vector split + Lipschitz embedding under asymmetric KL."""
    rng = np.random.default_rng(41)
    histograms = rng.dirichlet(np.ones(6), size=90)
    dataset = Dataset(objects=[h for h in histograms], name="dirichlet")
    split = RetrievalSplit.from_dataset(dataset, n_queries=8, seed=42)
    distance = KLDivergence()
    embedding = build_lipschitz_embedding(
        distance, split.database, dim=4, set_size=1, seed=43
    )
    return distance, split, embedding


@pytest.fixture(scope="module")
def tied_setup():
    """A database where most objects are exact duplicates → massive ties."""
    rng = np.random.default_rng(51)
    # 12 distinct points, each repeated several times, shuffled so duplicate
    # groups span shard boundaries.
    distinct = rng.normal(size=(12, 3))
    objects = [distinct[i % 12].copy() for i in range(72)]
    rng.shuffle(objects)
    database = Dataset(objects=objects, name="tied-db")
    queries = Dataset(objects=[rng.normal(size=3) for _ in range(6)], name="tied-q")
    distance = L2Distance()
    embedding = build_lipschitz_embedding(distance, database, dim=3, set_size=1, seed=52)
    return distance, RetrievalSplit(database=database, queries=queries), embedding


class TestShardedEqualsUnsharded:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 7])
    def test_l2_bit_identical(self, l2_setup, n_shards):
        distance, split, embedding = l2_setup
        flat = FilterRefineRetriever(distance, split.database, embedding)
        sharded = ShardedRetriever(
            distance, split.database, embedding, n_shards=n_shards
        )
        queries = list(split.queries)
        for k, p in [(1, 1), (3, 10), (5, 5), (4, len(split.database))]:
            assert_results_identical(
                flat.query_many(queries, k=k, p=p),
                sharded.query_many(queries, k=k, p=p),
            )

    @pytest.mark.parametrize("n_shards", [2, 5])
    def test_asymmetric_kl_bit_identical(self, kl_setup, n_shards):
        distance, split, embedding = kl_setup
        flat = FilterRefineRetriever(distance, split.database, embedding)
        sharded = ShardedRetriever(
            distance, split.database, embedding, n_shards=n_shards
        )
        queries = list(split.queries)
        assert_results_identical(
            flat.query_many(queries, k=3, p=12),
            sharded.query_many(queries, k=3, p=12),
        )

    @pytest.mark.parametrize("n_shards", [2, 4, 9])
    def test_duplicate_distance_ties_bit_identical(self, tied_setup, n_shards):
        distance, split, embedding = tied_setup
        flat = FilterRefineRetriever(distance, split.database, embedding)
        sharded = ShardedRetriever(
            distance, split.database, embedding, n_shards=n_shards
        )
        queries = list(split.queries)
        for k, p in [(2, 6), (5, 20), (10, len(split.database))]:
            assert_results_identical(
                flat.query_many(queries, k=k, p=p),
                sharded.query_many(queries, k=k, p=p),
            )

    def test_single_query_matches_query_many(self, l2_setup):
        distance, split, embedding = l2_setup
        sharded = ShardedRetriever(distance, split.database, embedding, n_shards=3)
        queries = list(split.queries)[:4]
        batched = sharded.query_many(queries, k=3, p=9)
        for obj, expected in zip(queries, batched):
            single = sharded.query(obj, k=3, p=9)
            np.testing.assert_array_equal(
                single.neighbor_indices, expected.neighbor_indices
            )
            np.testing.assert_array_equal(
                single.neighbor_distances, expected.neighbor_distances
            )

    def test_full_p_equals_brute_force_under_ties(self, tied_setup):
        """With p = n the pipeline must reproduce brute force exactly,
        including tie resolution by database index."""
        distance, split, embedding = tied_setup
        brute = BruteForceRetriever(distance, split.database)
        sharded = ShardedRetriever(distance, split.database, embedding, n_shards=5)
        n = len(split.database)
        for obj in list(split.queries):
            indices, distances = brute.query(obj, k=8)
            result = sharded.query(obj, k=8, p=n)
            np.testing.assert_array_equal(result.neighbor_indices, indices)
            np.testing.assert_array_equal(result.neighbor_distances, distances)


class TestParallelEqualsSerial:
    def test_sharded_n_jobs_bit_identical_with_counts(self, l2_setup):
        distance, split, embedding = l2_setup
        counting = CountingDistance(distance)
        serial = ShardedRetriever(counting, split.database, embedding, n_shards=3)
        queries = list(split.queries)
        serial_results = serial.query_many(queries, k=4, p=15)
        serial_calls = counting.reset()

        parallel = ShardedRetriever(counting, split.database, embedding, n_shards=3)
        parallel_results = parallel.query_many(queries, k=4, p=15, n_jobs=2)
        parallel_calls = counting.reset()

        assert_results_identical(serial_results, parallel_results)
        # The user-level counter is charged identically across the pool.
        assert parallel_calls == serial_calls == 15 * len(queries)
        assert (
            serial.refine_distance_evaluations
            == parallel.refine_distance_evaluations
            == 15 * len(queries)
        )

    def test_sharded_n_jobs_ties_and_asymmetry(self, tied_setup, kl_setup):
        for distance, split, embedding in (tied_setup, kl_setup):
            serial = ShardedRetriever(distance, split.database, embedding, n_shards=4)
            queries = list(split.queries)
            assert_results_identical(
                serial.query_many(queries, k=5, p=18),
                serial.query_many(queries, k=5, p=18, n_jobs=2),
            )

    def test_single_query_fan_out(self, l2_setup):
        distance, split, embedding = l2_setup
        sharded = ShardedRetriever(
            distance, split.database, embedding, n_shards=4, n_jobs=2
        )
        flat = FilterRefineRetriever(distance, split.database, embedding)
        obj = split.queries[0]
        parallel = sharded.query(obj, k=3, p=12)
        expected = flat.query(obj, k=3, p=12)
        np.testing.assert_array_equal(parallel.neighbor_indices, expected.neighbor_indices)
        np.testing.assert_array_equal(
            parallel.neighbor_distances, expected.neighbor_distances
        )
        assert (
            parallel.total_distance_computations == expected.total_distance_computations
        )

    def test_flat_query_many_n_jobs(self, kl_setup):
        distance, split, embedding = kl_setup
        flat = FilterRefineRetriever(distance, split.database, embedding)
        queries = list(split.queries)
        assert_results_identical(
            flat.query_many(queries, k=2, p=9),
            flat.query_many(queries, k=2, p=9, n_jobs=2),
        )

    def test_brute_force_n_jobs(self, l2_setup):
        distance, split, _ = l2_setup
        brute = BruteForceRetriever(distance, split.database)
        queries = list(split.queries)[:5]
        serial = brute.query_many(queries, k=4)
        serial_calls = brute.distance_computations
        brute.reset_counter()
        parallel = brute.query_many(queries, k=4, n_jobs=2)
        assert brute.distance_computations == serial_calls
        for (i1, d1), (i2, d2) in zip(serial, parallel):
            np.testing.assert_array_equal(i1, i2)
            np.testing.assert_array_equal(d1, d2)


class TestShardedEdgeCases:
    def test_k_larger_than_shard_population(self, l2_setup):
        """k beyond every shard's size must still return min(k, n) globally
        exact results — candidates from several shards are merged."""
        distance, split, embedding = l2_setup
        n = len(split.database)
        sharded = ShardedRetriever(distance, split.database, embedding, n_shards=9)
        assert max(sharded.shard_sizes) < 30
        result = sharded.query(split.queries[0], k=30, p=n)
        assert result.neighbor_indices.shape == (30,)
        brute_indices, _ = BruteForceRetriever(distance, split.database).query(
            split.queries[0], k=30
        )
        np.testing.assert_array_equal(result.neighbor_indices, brute_indices)

    def test_p_and_k_clamping(self, l2_setup):
        distance, split, embedding = l2_setup
        n = len(split.database)
        sharded = ShardedRetriever(distance, split.database, embedding, n_shards=3)
        result = sharded.query(split.queries[1], k=4, p=10**6)
        assert result.refine_distance_computations == n
        result = sharded.query(split.queries[1], k=12, p=2)
        assert result.neighbor_indices.shape == (12,)
        assert result.refine_distance_computations == 12
        result = sharded.query(split.queries[1], k=n + 7, p=1)
        assert result.neighbor_indices.shape == (n,)
        with pytest.raises(RetrievalError):
            sharded.query(split.queries[1], k=0, p=5)
        with pytest.raises(RetrievalError):
            sharded.query(split.queries[1], k=1, p=0)

    def test_more_shards_than_objects_clamped(self, l2_setup):
        distance, split, embedding = l2_setup
        sharded = ShardedRetriever(
            distance, split.database, embedding, n_shards=10**4
        )
        assert sharded.n_shards == len(split.database)
        flat = FilterRefineRetriever(distance, split.database, embedding)
        assert_results_identical(
            flat.query_many(list(split.queries)[:3], k=3, p=10),
            sharded.query_many(list(split.queries)[:3], k=3, p=10),
        )

    def test_invalid_construction(self, l2_setup):
        distance, split, embedding = l2_setup
        with pytest.raises(RetrievalError):
            ShardedRetriever(distance, split.database, embedding, n_shards=0)
        with pytest.raises(RetrievalError):
            ShardedRetriever("not-a-distance", split.database, embedding)

    def test_recall_against_ground_truth(self, l2_setup):
        distance, split, embedding = l2_setup
        ground_truth = ground_truth_neighbors(
            distance, split.database, split.queries, k_max=5
        )
        sharded = ShardedRetriever(distance, split.database, embedding, n_shards=4)
        exact = sharded.query_many(list(split.queries), k=5, p=len(split.database))
        assert retrieval_recall(exact, ground_truth, k=5) == 1.0


class TestCacheSafetyUnderParallelism:
    def test_identity_keyed_cache_rejected_by_n_jobs(self, l2_setup):
        distance, split, embedding = l2_setup
        cached = CachedDistance(distance, key=id)
        sharded = ShardedRetriever(cached, split.database, embedding, n_shards=2)
        with pytest.raises(DistanceError, match="key"):
            sharded.query_many(list(split.queries)[:3], k=2, p=8, n_jobs=2)
        flat = FilterRefineRetriever(cached, split.database, embedding)
        with pytest.raises(DistanceError, match="key"):
            flat.query_many(list(split.queries)[:3], k=2, p=8, n_jobs=2)

    def test_identity_keyed_cache_fine_serially(self, l2_setup):
        distance, split, embedding = l2_setup
        cached = CachedDistance(distance, key=id)
        sharded = ShardedRetriever(cached, split.database, embedding, n_shards=2)
        flat = FilterRefineRetriever(cached, split.database, embedding)
        assert_results_identical(
            flat.query_many(list(split.queries)[:3], k=2, p=8),
            sharded.query_many(list(split.queries)[:3], k=2, p=8),
        )

    def test_stable_keyed_cache_allowed_under_n_jobs(self, l2_setup):
        distance, split, embedding = l2_setup
        cached = CachedDistance(distance, key=_content_key)
        sharded = ShardedRetriever(cached, split.database, embedding, n_shards=2)
        flat = FilterRefineRetriever(distance, split.database, embedding)
        assert_results_identical(
            flat.query_many(list(split.queries)[:3], k=2, p=8),
            sharded.query_many(list(split.queries)[:3], k=2, p=8, n_jobs=2),
        )
