"""Tests for the :mod:`repro.analysis` invariant linter — and the gate itself.

Two layers:

* **Unit tests per rule** — every rule has at least one positive snippet
  (the violation is reported) and one negative snippet (the compliant
  idiom is not), so a rule that silently stops firing fails the suite,
  not just the codebase it was supposed to guard.
* **The gate** — the linter run over ``src`` and ``scripts`` with the
  checked-in baseline must report zero new findings.  This is the tier-1
  CI gate: a PR that introduces a violation fails here with the finding
  text in the assertion message.
"""

from __future__ import annotations

import io
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    AnalysisReport,
    all_rules,
    analyze_file,
    collect_files,
    load_baseline,
    mypy_available,
    run_analysis,
    run_type_check,
    write_baseline,
)
from repro.analysis.__main__ import main as analysis_main
from repro.analysis.core import Finding, ModuleContext, get_rule
from repro.analysis.reporters import render_json, render_text

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE = REPO_ROOT / ".repro-lint-baseline.json"


def lint_snippet(tmp_path, source, name="snippet.py", rule_ids=None):
    """Lint a dedented source snippet, returning its findings."""
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(source))
    return analyze_file(path, root=tmp_path, rule_ids=rule_ids)


def rule_ids(findings):
    return [finding.rule for finding in findings]


# --------------------------------------------------------------------------- #
# Registry                                                                    #
# --------------------------------------------------------------------------- #


def test_registry_has_the_documented_rules():
    ids = [rule.id for rule in all_rules()]
    assert ids == sorted(ids)
    assert set(ids) >= {f"RP00{i}" for i in range(1, 10)}
    for rule in all_rules():
        assert rule.description, rule.id
        assert rule.severity in ("error", "warning")


def test_get_rule_round_trip():
    assert get_rule("RP001").name == "parallel-safety"
    with pytest.raises(KeyError):
        get_rule("RP999")


# --------------------------------------------------------------------------- #
# RP001 parallel safety                                                       #
# --------------------------------------------------------------------------- #


def test_rp001_flags_context_shipped_to_parallel_refine(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from repro.distances.context import DistanceContext
        from repro.distances.parallel import parallel_refine

        def bad(measure, rows):
            context = DistanceContext(measure, rows)
            return parallel_refine(measure, rows, context, n_jobs=2)
        """,
        rule_ids=["RP001"],
    )
    assert rule_ids(findings) == ["RP001"]
    assert "DistanceContext" in findings[0].message


def test_rp001_flags_direct_construction_and_pool_submit(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def bad(pool, measure, rows):
            pool.submit(measure, CountingDistance(measure), rows)
        """,
        rule_ids=["RP001"],
    )
    assert rule_ids(findings) == ["RP001"]


def test_rp001_flags_closure_capture(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def bad(measure, rows):
            pool = PersistentPool(measure)
            job = pool.submit(lambda chunk: pool.run(chunk), rows)
            return job
        """,
        rule_ids=["RP001"],
    )
    assert "RP001" in rule_ids(findings)


def test_rp001_allows_split_counting_inner(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        from repro.distances.parallel import parallel_refine, split_counting

        def good(distance, rows):
            inner, counters = split_counting(distance)
            values = parallel_refine(inner, rows, n_jobs=2)
            return values, counters
        """,
        rule_ids=["RP001"],
    )
    assert findings == []


def test_rp001_scope_isolation_no_cross_function_bleed(tmp_path):
    # A context local to one function must not taint a sibling function's
    # fan-out call (regression test for the scope-confined walk).
    findings = lint_snippet(
        tmp_path,
        """
        def makes_context(measure, rows):
            context = DistanceContext(measure, rows)
            return context.compute_table()

        def fans_out(measure, rows):
            return parallel_rows(measure, rows, n_jobs=2)
        """,
        rule_ids=["RP001"],
    )
    assert findings == []


# --------------------------------------------------------------------------- #
# RP002 accounting discipline                                                 #
# --------------------------------------------------------------------------- #


def test_rp002_flags_raw_compute_in_retrieval(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def refine(measure, query, candidates):
            return [measure.compute(query, c) for c in candidates]
        """,
        name="src/repro/retrieval/raw.py",
        rule_ids=["RP002"],
    )
    assert rule_ids(findings) == ["RP002"]
    assert "accounting" in findings[0].message


def test_rp002_allows_counting_context_and_split_counting(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def good(self, query, candidates):
            a = self._counting.compute_many(query, candidates)
            b = self.context.compute_pairs(candidates, candidates)
            inner, _counters = split_counting(self.counting)
            c = inner.compute_many(query, candidates)
            return a, b, c
        """,
        name="src/repro/retrieval/ok.py",
        rule_ids=["RP002"],
    )
    assert findings == []


def test_rp002_does_not_apply_outside_retrieval_and_serving(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def anywhere(measure, x, y):
            return measure.compute(x, y)
        """,
        name="src/repro/distances/impl.py",
        rule_ids=["RP002"],
    )
    assert findings == []


# --------------------------------------------------------------------------- #
# RP003 exception hygiene                                                     #
# --------------------------------------------------------------------------- #


def test_rp003_flags_bare_except(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def swallow():
            try:
                risky()
            except:
                pass
        """,
        rule_ids=["RP003"],
    )
    assert rule_ids(findings) == ["RP003"]
    assert "bare" in findings[0].message


def test_rp003_flags_silent_broad_catch_but_allows_reraise_and_log(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def silent():
            try:
                risky()
            except Exception:
                pass

        def reraises():
            try:
                risky()
            except Exception as exc:
                raise RuntimeError("typed") from exc

        def logs():
            try:
                risky()
            except Exception:
                logger.warning("risky failed")
        """,
        rule_ids=["RP003"],
    )
    assert len(findings) == 1
    assert findings[0].line == 5  # only the silent handler


def test_rp003_rim_requires_typed_reraise(tmp_path):
    source = """
    def load(path):
        try:
            return parse(path)
        except OSError:
            return None
    """
    rim = lint_snippet(
        tmp_path, source, name="src/repro/index/artifacts.py", rule_ids=["RP003"]
    )
    assert rule_ids(rim) == ["RP003"]
    assert "typed" in rim[0].message
    elsewhere = lint_snippet(
        tmp_path, source, name="src/repro/retrieval/other.py", rule_ids=["RP003"]
    )
    assert elsewhere == []


def test_rp003_rim_satisfied_by_typed_reraise(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def load(path):
            try:
                return parse(path)
            except OSError as exc:
                raise ArtifactError(f"unreadable {path}") from exc
        """,
        name="src/repro/index/artifacts.py",
        rule_ids=["RP003"],
    )
    assert findings == []


# --------------------------------------------------------------------------- #
# RP004 determinism                                                           #
# --------------------------------------------------------------------------- #


def test_rp004_flags_bare_set_iteration(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def assemble(keys):
            groups = {k[0] for k in keys}
            out = []
            for g in groups:
                out.append(g)
            return out
        """,
        rule_ids=["RP004"],
    )
    assert rule_ids(findings) == ["RP004"]


def test_rp004_allows_sorted_set_iteration(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def assemble(keys):
            out = []
            for g in sorted({k[0] for k in keys}):
                out.append(g)
            return [x for x in sorted(set(keys))]
        """,
        rule_ids=["RP004"],
    )
    assert findings == []


def test_rp004_flags_clock_in_ranking_function(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import time

        def merge_results(lists):
            stamp = time.monotonic()
            return sorted(lists), stamp
        """,
        rule_ids=["RP004"],
    )
    assert rule_ids(findings) == ["RP004"]
    assert "pure" in findings[0].message


def test_rp004_allows_clock_outside_ranking_paths(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import time

        def serve(request):
            start = time.monotonic()
            return handle(request), time.monotonic() - start
        """,
        rule_ids=["RP004"],
    )
    assert findings == []


# --------------------------------------------------------------------------- #
# RP005 resource hygiene                                                      #
# --------------------------------------------------------------------------- #


def test_rp005_flags_unreleased_and_discarded_pools(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def leaky(measure):
            pool = PersistentPool(measure)
            values = pool.run(job)
            return values

        def discarded(measure):
            PersistentPool(measure)
        """,
        rule_ids=["RP005"],
    )
    assert rule_ids(findings) == ["RP005", "RP005"]


def test_rp005_allows_with_close_and_handoff(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def managed(measure):
            with PersistentPool(measure) as pool:
                return pool.run(job)

        def closed(measure):
            pool = PersistentPool(measure)
            try:
                return pool.run(job)
            finally:
                pool.close()

        def handed_off(self, measure):
            pool = PersistentPool(measure)
            self._pool = pool
            return make_engine(pool)

        def returned(measure):
            pool = PersistentPool(measure)
            return pool
        """,
        rule_ids=["RP005"],
    )
    assert findings == []


# --------------------------------------------------------------------------- #
# RP006–RP009 style rules                                                     #
# --------------------------------------------------------------------------- #


def test_rp006_flags_mutable_defaults_and_allows_none(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def bad(items=[], table={}, pool=set(), extra=dict()):
            return items, table, pool, extra

        def good(items=None, name="x", count=0, pair=(1, 2)):
            return items, name, count, pair
        """,
        rule_ids=["RP006"],
    )
    assert rule_ids(findings) == ["RP006"] * 4


def test_rp007_flags_discarded_submit_and_allows_bound_job(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def bad(pool, work):
            pool.submit(work)

        def good(pool, work):
            job = pool.submit(work)
            return job.results()

        def not_a_pool(session, work):
            session.submit(work)
        """,
        rule_ids=["RP007"],
    )
    assert len(findings) == 1
    assert findings[0].line == 3


def test_rp008_flags_missing_public_docstrings(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def exposed():
            return 1

        def _private():
            return 2

        class Widget:
            \"\"\"Documented class.\"\"\"

            def undocumented(self):
                return 3

            def _hidden(self):
                return 4
        """,
        name="src/repro/widgets.py",
        rule_ids=["RP008"],
    )
    assert sorted(f.line for f in findings) == [2, 11]


def test_rp008_exempts_property_setters(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        class Widget:
            \"\"\"Documented.\"\"\"

            @property
            def bound(self):
                \"\"\"The bound.\"\"\"
                return self._bound

            @bound.setter
            def bound(self, value):
                self._bound = value
        """,
        name="src/repro/widgets.py",
        rule_ids=["RP008"],
    )
    assert findings == []


def test_rp009_flags_print_in_library_but_not_experiments(tmp_path):
    source = """
    def report(value):
        print(value)
    """
    library = lint_snippet(
        tmp_path, source, name="src/repro/retrieval/noise.py", rule_ids=["RP009"]
    )
    assert rule_ids(library) == ["RP009"]
    experiments = lint_snippet(
        tmp_path, source, name="src/repro/experiments/show.py", rule_ids=["RP009"]
    )
    assert experiments == []


# --------------------------------------------------------------------------- #
# RP010 kernel parity                                                         #
# --------------------------------------------------------------------------- #

KERNELS_DIR = "src/repro/distances/kernels"

COMPILED_BACKEND = """
class FastBackend:
    name = "fast"
    compiled = True

    def dtw_batch(self, xs, ys, radius):
        return None
"""


def _write_kernel_world(tmp_path, fallback_methods=("dtw_batch",), test_source=None):
    """Lay out a fake kernels package plus (optionally) the parity suite."""
    fallback = "\n".join(
        ["class NumpyBackend:", "    name = 'numpy'", "    compiled = False"]
        + [
            f"\n    def {name}(self, *args):\n        return None"
            for name in fallback_methods
        ]
    )
    (tmp_path / KERNELS_DIR).mkdir(parents=True, exist_ok=True)
    (tmp_path / KERNELS_DIR / "numpy_backend.py").write_text(fallback)
    if test_source is not None:
        (tmp_path / "tests").mkdir(exist_ok=True)
        (tmp_path / "tests" / "test_kernel_backends.py").write_text(test_source)


def test_rp010_accepts_backed_and_tested_kernel(tmp_path):
    _write_kernel_world(
        tmp_path, test_source="def test_parity():\n    backend.dtw_batch(x, y, 3)\n"
    )
    findings = lint_snippet(
        tmp_path, COMPILED_BACKEND, name=f"{KERNELS_DIR}/fast.py", rule_ids=["RP010"]
    )
    assert findings == []


def test_rp010_flags_entry_point_without_numpy_fallback(tmp_path):
    _write_kernel_world(
        tmp_path,
        fallback_methods=("other_batch",),
        test_source="def test_parity():\n    backend.dtw_batch(x, y, 3)\n",
    )
    findings = lint_snippet(
        tmp_path, COMPILED_BACKEND, name=f"{KERNELS_DIR}/fast.py", rule_ids=["RP010"]
    )
    assert rule_ids(findings) == ["RP010"]
    assert "no same-name method on the numpy fallback" in findings[0].message


def test_rp010_flags_missing_fallback_module(tmp_path):
    (tmp_path / KERNELS_DIR).mkdir(parents=True, exist_ok=True)
    findings = lint_snippet(
        tmp_path, COMPILED_BACKEND, name=f"{KERNELS_DIR}/fast.py", rule_ids=["RP010"]
    )
    assert rule_ids(findings) == ["RP010"]
    assert "no readable numpy fallback module" in findings[0].message


def test_rp010_flags_untested_entry_point(tmp_path):
    _write_kernel_world(
        tmp_path, test_source="def test_parity():\n    backend.edit_batch(x)\n"
    )
    findings = lint_snippet(
        tmp_path, COMPILED_BACKEND, name=f"{KERNELS_DIR}/fast.py", rule_ids=["RP010"]
    )
    assert rule_ids(findings) == ["RP010"]
    assert "never referenced from tests/test_kernel_backends.py" in findings[0].message


def test_rp010_ignores_uncompiled_classes_and_other_packages(tmp_path):
    _write_kernel_world(tmp_path, fallback_methods=())
    uncompiled = """
    class SlowBackend:
        compiled = False

        def dtw_batch(self, xs, ys, radius):
            return None
    """
    assert (
        lint_snippet(
            tmp_path, uncompiled, name=f"{KERNELS_DIR}/slow.py", rule_ids=["RP010"]
        )
        == []
    )
    # The same compiled class outside distances/kernels is out of scope.
    assert (
        lint_snippet(
            tmp_path,
            COMPILED_BACKEND,
            name="src/repro/retrieval/fast.py",
            rule_ids=["RP010"],
        )
        == []
    )


# --------------------------------------------------------------------------- #
# RP011 remote rim                                                            #
# --------------------------------------------------------------------------- #

REMOTE_DIR = "src/repro/remote"


def test_rp011_flags_socket_without_settimeout(tmp_path):
    source = """
    import socket

    def listen(port):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.bind(("127.0.0.1", port))
        return sock
    """
    findings = lint_snippet(
        tmp_path, source, name=f"{REMOTE_DIR}/srv.py", rule_ids=["RP011"]
    )
    assert rule_ids(findings) == ["RP011"]
    assert "settimeout" in findings[0].message


def test_rp011_accepts_socket_with_deadline(tmp_path):
    source = """
    import socket

    def listen(port):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.settimeout(1.0)
        sock.bind(("127.0.0.1", port))
        return sock
    """
    assert (
        lint_snippet(tmp_path, source, name=f"{REMOTE_DIR}/srv.py", rule_ids=["RP011"])
        == []
    )


def test_rp011_flags_create_connection_without_timeout(tmp_path):
    source = """
    import socket

    def dial(address):
        return socket.create_connection(address)
    """
    findings = lint_snippet(
        tmp_path, source, name=f"{REMOTE_DIR}/cli.py", rule_ids=["RP011"]
    )
    assert rule_ids(findings) == ["RP011"]
    assert "timeout" in findings[0].message
    # Timeout via keyword or second positional argument both satisfy it.
    for variant in (
        "return socket.create_connection(address, timeout=5.0)",
        "return socket.create_connection(address, 5.0)",
    ):
        assert (
            lint_snippet(
                tmp_path,
                source.replace("return socket.create_connection(address)", variant),
                name=f"{REMOTE_DIR}/cli.py",
                rule_ids=["RP011"],
            )
            == []
        )


def test_rp011_flags_swallowed_socket_errors(tmp_path):
    source = """
    def read(sock):
        try:
            return sock.recv(4)
        except OSError:
            return None
    """
    findings = lint_snippet(
        tmp_path, source, name=f"{REMOTE_DIR}/cli.py", rule_ids=["RP011"]
    )
    assert rule_ids(findings) == ["RP011"]
    assert "Remote" in findings[0].message


def test_rp011_accepts_typed_reraise_bare_raise_and_pragma(tmp_path):
    typed = """
    from repro.exceptions import RemoteConnectionError

    def read(sock):
        try:
            return sock.recv(4)
        except (OSError, TimeoutError) as exc:
            raise RemoteConnectionError(str(exc)) from exc
    """
    bare = """
    def read(sock):
        try:
            return sock.recv(4)
        except ConnectionResetError:
            raise
    """
    pragma = """
    def close(sock):
        try:
            sock.close()
        except OSError:  # repro-lint: disable=RP011 -- double-close guard
            pass
    """
    for source in (typed, bare, pragma):
        assert (
            lint_snippet(
                tmp_path, source, name=f"{REMOTE_DIR}/cli.py", rule_ids=["RP011"]
            )
            == []
        )


def test_rp011_is_scoped_to_the_remote_package(tmp_path):
    source = """
    import socket

    def dial(address):
        try:
            return socket.create_connection(address)
        except OSError:
            return None
    """
    assert (
        lint_snippet(
            tmp_path, source, name="src/repro/index/pool.py", rule_ids=["RP011"]
        )
        == []
    )


# --------------------------------------------------------------------------- #
# RP012 planner purity                                                        #
# --------------------------------------------------------------------------- #

PLANNER_FILE = "src/repro/retrieval/planner.py"


def test_rp012_flags_clock_in_decision_function(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import time

        class CostModel:
            def choose_backend(self, p):
                started = time.perf_counter()
                return "flat" if started else "sharded"
        """,
        name=PLANNER_FILE,
        rule_ids=["RP012"],
    )
    assert rule_ids(findings) == ["RP012"]
    assert "time.perf_counter" in findings[0].message


def test_rp012_flags_rng_in_prediction(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        import numpy as np

        def predict_cost(model, p):
            return p * np.random.random()
        """,
        name=PLANNER_FILE,
        rule_ids=["RP012"],
    )
    assert rule_ids(findings) == ["RP012"]


def test_rp012_allows_clocks_in_measurement_code(tmp_path):
    # observe_* / calibrate are the measurement side of the split: the
    # caller reads the clock and feeds values in — that stays legal.
    findings = lint_snippet(
        tmp_path,
        """
        import time

        class CostModel:
            def observe_batch(self, work):
                started = time.perf_counter()
                work()
                return time.perf_counter() - started

        def calibrate(probes):
            return [time.perf_counter() for _ in probes]
        """,
        name=PLANNER_FILE,
        rule_ids=["RP012"],
    )
    assert findings == []


def test_rp012_is_scoped_to_planner_modules(tmp_path):
    source = """
    import time

    def choose_backend(p):
        return "flat" if time.perf_counter() else "sharded"
    """
    assert (
        lint_snippet(
            tmp_path,
            source,
            name="src/repro/retrieval/engine.py",
            rule_ids=["RP012"],
        )
        == []
    )


# --------------------------------------------------------------------------- #
# Pragmas                                                                     #
# --------------------------------------------------------------------------- #


def test_pragma_suppresses_on_same_line_and_line_above(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def swallow():
            try:
                risky()
            except Exception:  # repro-lint: disable=RP003 -- probe only
                pass

        def swallow_above():
            try:
                risky()
            # repro-lint: disable=RP003 -- probe only
            except Exception:
                pass
        """,
        rule_ids=["RP003"],
    )
    assert findings == []


def test_pragma_is_rule_scoped(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def swallow():
            try:
                risky()
            except Exception:  # repro-lint: disable=RP004 -- wrong rule
                pass
        """,
        rule_ids=["RP003"],
    )
    assert rule_ids(findings) == ["RP003"]


def test_file_pragma_suppresses_whole_file_within_window(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        # repro-lint: disable-file=RP003
        def one():
            try:
                risky()
            except:
                pass
        """,
        rule_ids=["RP003"],
    )
    assert findings == []


def test_file_pragma_outside_window_is_ignored(tmp_path):
    filler = "\n".join(f"x{i} = {i}" for i in range(20))
    tail = textwrap.dedent(
        """
        # repro-lint: disable-file=RP003
        def one():
            try:
                risky()
            except:
                pass
        """
    )
    findings = lint_snippet(tmp_path, filler + tail, rule_ids=["RP003"])
    assert rule_ids(findings) == ["RP003"]


def test_disable_all_pragma(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        def bad(items=[]):  # repro-lint: disable=all -- test fixture
            return items
        """,
        rule_ids=["RP006"],
    )
    assert findings == []


def test_pragma_inside_string_literal_is_not_honoured(tmp_path):
    findings = lint_snippet(
        tmp_path,
        """
        TEXT = "# repro-lint: disable-file=RP006"

        def bad(items=[]):
            return items
        """,
        rule_ids=["RP006"],
    )
    assert rule_ids(findings) == ["RP006"]


# --------------------------------------------------------------------------- #
# Baseline                                                                    #
# --------------------------------------------------------------------------- #


def _finding(rule="RP008", path="src/repro/x.py", line=3, source="def f():"):
    return Finding(
        rule=rule,
        severity="error",
        path=path,
        line=line,
        message="m",
        source_line=source,
    )


def test_baseline_round_trip_and_note(tmp_path):
    target = tmp_path / "baseline.json"
    write_baseline(target, [_finding(), _finding(line=9, source="def g():")])
    payload = json.loads(target.read_text())
    assert "note" in payload
    assert len(payload["findings"]) == 2
    keys = load_baseline(target)
    assert ("RP008", "src/repro/x.py", "def f():") in keys


def test_baseline_tolerates_line_drift_but_not_new_findings(tmp_path):
    snippet_dir = tmp_path / "tree"
    path = snippet_dir / "src" / "repro" / "mod.py"
    path.parent.mkdir(parents=True)
    path.write_text("def exposed():\n    return 1\n")
    baseline_path = tmp_path / "baseline.json"

    first = run_analysis([snippet_dir], root=snippet_dir, rule_ids=["RP008"])
    assert len(first.findings) == 1
    write_baseline(baseline_path, first.findings)

    # Drift: the same def moves down two lines — still grandfathered.
    path.write_text("X = 1\nY = 2\ndef exposed():\n    return 1\n")
    drifted = run_analysis(
        [snippet_dir], baseline_path=baseline_path, root=snippet_dir, rule_ids=["RP008"]
    )
    assert drifted.findings == []
    assert len(drifted.grandfathered) == 1
    assert drifted.exit_code() == 0

    # A *new* violation does not inherit the waiver.
    path.write_text(
        "def exposed():\n    return 1\n\ndef another():\n    return 2\n"
    )
    grown = run_analysis(
        [snippet_dir], baseline_path=baseline_path, root=snippet_dir, rule_ids=["RP008"]
    )
    assert len(grown.findings) == 1
    assert grown.findings[0].source_line == "def another():"
    assert grown.exit_code() == 1


def test_stale_baseline_entries_are_reported(tmp_path):
    snippet_dir = tmp_path / "tree"
    path = snippet_dir / "src" / "repro" / "mod.py"
    path.parent.mkdir(parents=True)
    path.write_text('def exposed():\n    """Doc."""\n    return 1\n')
    baseline_path = tmp_path / "baseline.json"
    write_baseline(baseline_path, [_finding(path="src/repro/mod.py")])
    report = run_analysis(
        [snippet_dir], baseline_path=baseline_path, root=snippet_dir, rule_ids=["RP008"]
    )
    assert report.findings == []
    assert len(report.stale_baseline) == 1


def test_diff_mode_ignores_baseline_entries_for_unchecked_files(tmp_path):
    """Linting a file subset must not call other files' entries stale."""
    snippet_dir = tmp_path / "tree"
    checked = snippet_dir / "src" / "repro" / "checked.py"
    checked.parent.mkdir(parents=True)
    checked.write_text('def exposed():\n    """Doc."""\n    return 1\n')
    baseline_path = tmp_path / "baseline.json"
    write_baseline(
        baseline_path,
        [
            _finding(path="src/repro/checked.py", source="def gone():"),
            _finding(path="src/repro/unchecked.py", source="def other():"),
        ],
    )
    report = run_analysis(
        [checked], baseline_path=baseline_path, root=snippet_dir, rule_ids=["RP008"]
    )
    assert report.findings == []
    # checked.py's own entry is stale (its finding is fixed); unchecked.py's
    # entry is unknowable from this run and must not be reported.
    assert {key[1] for key in report.stale_baseline} == {"src/repro/checked.py"}


# --------------------------------------------------------------------------- #
# Reporters and CLI                                                           #
# --------------------------------------------------------------------------- #


def test_text_and_json_reporters_render_findings():
    report = AnalysisReport(findings=[_finding()], files_checked=1)
    text = io.StringIO()
    render_text(report, stream=text)
    assert "src/repro/x.py:3: [RP008/error]" in text.getvalue()
    assert "FAIL" in text.getvalue()
    blob = io.StringIO()
    render_json(report, stream=blob)
    payload = json.loads(blob.getvalue())
    assert payload["exit_code"] == 1
    assert payload["findings"][0]["rule"] == "RP008"


def test_cli_list_rules_and_files_mode(tmp_path, capsys):
    assert analysis_main(["--list-rules"]) == 0
    assert "RP001" in capsys.readouterr().out

    bad = tmp_path / "bad.py"
    bad.write_text("def f(xs=[]):\n    return xs\n")
    status = analysis_main(["--files", str(bad), "--no-baseline", "--rules", "RP006"])
    assert status == 1
    assert "RP006" in capsys.readouterr().out


def test_cli_write_baseline_then_gate_passes(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    tree = tmp_path / "src" / "repro"
    tree.mkdir(parents=True)
    (tree / "mod.py").write_text("def exposed():\n    return 1\n")
    assert analysis_main(["src", "--write-baseline"]) == 0
    capsys.readouterr()
    # Default baseline discovery picks up the freshly written file.
    assert analysis_main(["src"]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_parse_errors_gate(tmp_path):
    mangled = tmp_path / "broken.py"
    mangled.write_text("def broken(:\n")
    report = run_analysis([mangled], root=tmp_path)
    assert report.parse_errors
    assert report.exit_code() == 1


# --------------------------------------------------------------------------- #
# The gate: the tree itself is clean                                          #
# --------------------------------------------------------------------------- #


def test_linter_gate_tree_is_clean():
    """`python -m repro.analysis src scripts` over the repo must pass."""
    report = run_analysis(
        [REPO_ROOT / "src", REPO_ROOT / "scripts"],
        baseline_path=BASELINE,
        root=REPO_ROOT,
    )
    rendered = "\n".join(
        f"{f.path}:{f.line}: [{f.rule}] {f.message}" for f in report.findings
    )
    assert report.exit_code() == 0, f"new lint findings:\n{rendered}"
    assert not report.stale_baseline, (
        "baseline entries no longer match any finding; regenerate with "
        "`python -m repro.analysis src scripts --write-baseline`: "
        f"{sorted(report.stale_baseline)}"
    )


def test_gate_via_module_invocation():
    """The exact CI command line works from the repo root."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    result = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src", "scripts"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
        env=env,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "[repro.analysis] ok" in result.stdout


def test_serving_chunk_assembly_stays_deterministic():
    """Regression: serving.py once iterated a bare set of chunk-group keys
    while assembling worker replies (RP004); the fix sorts the group
    indices.  Keep the file clean under the determinism rule."""
    findings = analyze_file(
        REPO_ROOT / "src" / "repro" / "index" / "serving.py",
        root=REPO_ROOT,
        rule_ids=["RP004"],
    )
    assert findings == []


def test_collect_files_skips_caches(tmp_path):
    good = tmp_path / "pkg" / "mod.py"
    good.parent.mkdir()
    good.write_text("X = 1\n")
    cached = tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.py"
    cached.parent.mkdir()
    cached.write_text("X = 1\n")
    collected = collect_files([tmp_path])
    assert [p.name for p in collected] == ["mod.py"]


# --------------------------------------------------------------------------- #
# Optional type gate                                                          #
# --------------------------------------------------------------------------- #


def test_type_gate_skips_cleanly_without_mypy():
    stream = io.StringIO()
    status = run_type_check(stream=stream)
    if mypy_available():  # pragma: no cover - environment-dependent
        assert "SKIP" not in stream.getvalue()
    else:
        assert status == 0
        assert "SKIP" in stream.getvalue()


def test_types_flag_via_cli():
    status = analysis_main(["--types"])
    if not mypy_available():
        assert status == 0
