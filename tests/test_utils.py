"""Tests for repro.utils (rng, validation, timing)."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timing import Stopwatch, ThroughputMeter
from repro.utils.validation import (
    check_array_2d,
    check_fraction,
    check_in_choices,
    check_non_empty,
    check_non_negative_int,
    check_positive_int,
    check_probability,
)


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).integers(0, 1000, size=5)
        b = ensure_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).integers(0, 10**9)
        b = ensure_rng(2).integers(0, 10**9)
        assert a != b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_rejects_invalid_seed_type(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")

    def test_numpy_integer_seed_accepted(self):
        assert isinstance(ensure_rng(np.int64(3)), np.random.Generator)


class TestSpawnRngs:
    def test_returns_requested_count(self):
        children = spawn_rngs(0, 5)
        assert len(children) == 5
        assert all(isinstance(c, np.random.Generator) for c in children)

    def test_children_are_independent(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(0, 10**9) != b.integers(0, 10**9)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_deterministic_given_seed(self):
        first = [g.integers(0, 10**9) for g in spawn_rngs(9, 3)]
        second = [g.integers(0, 10**9) for g in spawn_rngs(9, 3)]
        assert first == second


class TestValidation:
    def test_check_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3
        assert check_positive_int(np.int32(5), "x") == 5

    @pytest.mark.parametrize("bad", [0, -1, 2.5, "3", True, None])
    def test_check_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            check_positive_int(bad, "x")

    def test_check_non_negative_int(self):
        assert check_non_negative_int(0, "x") == 0
        with pytest.raises(ConfigurationError):
            check_non_negative_int(-1, "x")

    def test_check_probability_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ConfigurationError):
            check_probability(1.5, "p")
        with pytest.raises(ConfigurationError):
            check_probability(-0.1, "p")
        with pytest.raises(ConfigurationError):
            check_probability("oops", "p")

    def test_check_fraction_excludes_zero(self):
        assert check_fraction(0.5, "f") == 0.5
        with pytest.raises(ConfigurationError):
            check_fraction(0.0, "f")

    def test_check_in_choices(self):
        assert check_in_choices("a", "x", ["a", "b"]) == "a"
        with pytest.raises(ConfigurationError):
            check_in_choices("c", "x", ["a", "b"])

    def test_check_non_empty(self):
        assert check_non_empty([1], "s") == [1]
        with pytest.raises(ConfigurationError):
            check_non_empty([], "s")

    def test_check_array_2d_promotes_1d(self):
        arr = check_array_2d([1.0, 2.0, 3.0], "a")
        assert arr.shape == (3, 1)

    def test_check_array_2d_rejects_3d_and_empty(self):
        with pytest.raises(ConfigurationError):
            check_array_2d(np.zeros((2, 2, 2)), "a")
        with pytest.raises(ConfigurationError):
            check_array_2d(np.zeros((0, 3)), "a")


class TestStopwatch:
    def test_accumulates_time(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        assert watch.elapsed >= 0.009

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0
        assert not watch.running

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running


class TestThroughputMeter:
    def test_measures_positive_rate(self):
        meter = ThroughputMeter(name="noop")
        rate = meter.measure(lambda: None, repetitions=100)
        assert rate > 0
        assert meter.calls == 100

    def test_time_for_scales_linearly(self):
        meter = ThroughputMeter()
        meter.measure(lambda: None, repetitions=50)
        assert meter.time_for(100) == pytest.approx(2 * meter.time_for(50))

    def test_time_for_without_measurement_raises(self):
        with pytest.raises(RuntimeError):
            ThroughputMeter().time_for(10)

    def test_zero_repetitions_rejected(self):
        with pytest.raises(ValueError):
            ThroughputMeter().measure(lambda: None, repetitions=0)

    def test_per_second_zero_before_measurement(self):
        assert ThroughputMeter().per_second == 0.0
